#include "src/wfs/stable.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/lang/parser.h"

namespace hilog {
namespace {

class StableTest : public ::testing::Test {
 protected:
  GroundProgram G(std::string_view text) {
    ParseResult<Program> parsed = ParseProgram(store_, text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    GroundProgram ground;
    EXPECT_TRUE(ToGroundProgram(store_, *parsed, &ground));
    return ground;
  }
  TermId T(std::string_view text) { return *ParseTerm(store_, text); }

  std::vector<TermId> Atoms(std::initializer_list<std::string_view> names) {
    std::vector<TermId> atoms;
    for (auto n : names) atoms.push_back(T(n));
    std::sort(atoms.begin(), atoms.end());
    return atoms;
  }

  TermStore store_;
};

// Example 3.2: p :- ~q. q :- ~p. r :- p. r :- q. t :- p, ~p.
// Stable models {p,r} and {q,r}; the well-founded model is all-undefined.
TEST_F(StableTest, PaperExample32) {
  GroundProgram ground = G("p :- ~q. q :- ~p. r :- p. r :- q. t :- p, ~p.");
  StableModelsResult result = EnumerateStableModels(ground, StableOptions());
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.models.size(), 2u);
  std::vector<std::vector<TermId>> expected = {Atoms({"p", "r"}),
                                               Atoms({"q", "r"})};
  std::vector<std::vector<TermId>> got = {result.models[0].true_atoms,
                                          result.models[1].true_atoms};
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);

  WfsResult wfs = ComputeWfsAlternating(ground);
  EXPECT_TRUE(wfs.model.IsUndefined(T("p")));
  EXPECT_TRUE(wfs.model.IsUndefined(T("q")));
  EXPECT_TRUE(wfs.model.IsUndefined(T("r")));
  EXPECT_TRUE(wfs.model.IsUndefined(T("t")));
}

// Section 3.2: the program of Example 3.1 has no stable models because of
// the rule u :- ~u.
TEST_F(StableTest, PaperExample31HasNoStableModels) {
  GroundProgram ground = G(
      "p :- q. q :- p. r :- s, ~p. s. t :- ~r. u :- ~u.");
  StableModelsResult result = EnumerateStableModels(ground, StableOptions());
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.models.empty());
}

TEST_F(StableTest, TwoValuedWfsIsUniqueStableModel) {
  GroundProgram ground = G("a. b :- a, ~c. d :- ~b.");
  StableModelsResult result = EnumerateStableModels(ground, StableOptions());
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.models.size(), 1u);
  EXPECT_EQ(result.models[0].true_atoms, Atoms({"a", "b"}));
  WfsResult wfs = ComputeWfsAlternating(ground);
  EXPECT_TRUE(wfs.model.IsTotal());
}

TEST_F(StableTest, IsStableModelAgreesWithEnumeration) {
  GroundProgram ground = G("p :- ~q. q :- ~p. r :- p. r :- q. t :- p, ~p.");
  EXPECT_TRUE(IsStableModel(ground, Atoms({"p", "r"})));
  EXPECT_TRUE(IsStableModel(ground, Atoms({"q", "r"})));
  EXPECT_FALSE(IsStableModel(ground, Atoms({"p", "q", "r"})));
  EXPECT_FALSE(IsStableModel(ground, Atoms({"p"})));
  EXPECT_FALSE(IsStableModel(ground, Atoms({})));
  EXPECT_FALSE(IsStableModel(ground, Atoms({"t", "p", "r"})));
}

// Definition 3.6: stable models are exactly the two-valued fixpoints of
// W_P. Cross-check the two characterizations on several programs.
TEST_F(StableTest, WFixpointCharacterizationMatchesGelfondLifschitz) {
  const char* programs[] = {
      "p :- ~q. q :- ~p. r :- p. r :- q. t :- p, ~p.",
      "a. b :- a, ~c. d :- ~b.",
      "p :- q. q :- p. r :- s, ~p. s. t :- ~r. u :- ~u.",
      "w(1) :- m(1,2), ~w(2). w(2) :- m(2,3), ~w(3). m(1,2). m(2,3).",
      "x :- ~y. y :- ~x. z :- ~z.",
  };
  for (const char* text : programs) {
    GroundProgram ground = G(text);
    AtomTable table;
    ground.CollectAtoms(&table);
    // Enumerate all subsets of atoms (programs are small).
    size_t n = table.size();
    ASSERT_LE(n, 12u);
    for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
      std::vector<TermId> trues;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) trues.push_back(table.atom(i));
      }
      EXPECT_EQ(IsStableModel(ground, trues),
                IsTwoValuedFixpointOfW(ground, trues))
          << text << " mask=" << mask;
    }
  }
}

TEST_F(StableTest, EveryStableModelExtendsWellFoundedModel) {
  const char* programs[] = {
      "p :- ~q. q :- ~p. s. r :- s, ~x. x :- y. y :- x.",
      "a :- ~b. b :- ~a. c :- a. c :- b. f.",
  };
  for (const char* text : programs) {
    GroundProgram ground = G(text);
    WfsResult wfs = ComputeWfsAlternating(ground);
    StableModelsResult result = EnumerateStableModels(ground, StableOptions());
    for (const StableModel& model : result.models) {
      for (TermId t : wfs.model.TrueAtoms()) {
        EXPECT_TRUE(std::count(model.true_atoms.begin(),
                               model.true_atoms.end(), t) > 0)
            << text;
      }
      for (TermId t : model.true_atoms) {
        EXPECT_FALSE(wfs.model.IsFalse(t)) << text;
      }
    }
  }
}

TEST_F(StableTest, StableModelsAreMinimalModels) {
  // Property: no stable model is a strict subset of another (antichain).
  GroundProgram ground =
      G("p :- ~q. q :- ~p. r :- p. r :- q. s :- ~r. t.");
  StableModelsResult result = EnumerateStableModels(ground, StableOptions());
  for (const StableModel& a : result.models) {
    for (const StableModel& b : result.models) {
      if (&a == &b) continue;
      bool subset = std::includes(b.true_atoms.begin(), b.true_atoms.end(),
                                  a.true_atoms.begin(), a.true_atoms.end());
      EXPECT_FALSE(subset);
    }
  }
}

TEST_F(StableTest, BranchBudgetReportsIncomplete) {
  // 30 independent negative loops -> 2^30 candidates; refuse politely.
  std::string text;
  for (int i = 0; i < 30; ++i) {
    std::string a = "a" + std::to_string(i);
    std::string b = "b" + std::to_string(i);
    text += a + " :- ~" + b + ". " + b + " :- ~" + a + ". ";
  }
  GroundProgram ground = G(text);
  StableOptions options;
  options.max_branch_atoms = 10;
  StableModelsResult result = EnumerateStableModels(ground, options);
  EXPECT_FALSE(result.complete);
}

TEST_F(StableTest, ClaimingUnknownAtomTrueIsNotStable) {
  GroundProgram ground = G("p.");
  EXPECT_FALSE(IsStableModel(ground, Atoms({"p", "ghost"})));
  EXPECT_FALSE(IsTwoValuedFixpointOfW(ground, Atoms({"p", "ghost"})));
}

}  // namespace
}  // namespace hilog
