// Tests for weak stratification ([12]) and the paper's Section 6
// discussion: Example 6.4 has a two-valued WFS and *is* weakly stratified
// (components live at the ground-atom level) while it is NOT modularly
// stratified — the reason the paper gives for preferring modular
// stratification anyway is the magic-sets method, which needs the
// sequential-subgoal property, not just two-valuedness.

#include "src/analysis/weak_stratification.h"

#include <gtest/gtest.h>

#include "random_programs.h"
#include "src/analysis/modular.h"
#include "src/analysis/stratification.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"

namespace hilog {
namespace {

class WeakStratificationTest : public ::testing::Test {
 protected:
  GroundProgram G(std::string_view text) {
    ParseResult<Program> parsed = ParseProgram(store_, text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    GroundProgram ground;
    EXPECT_TRUE(ToGroundProgram(store_, *parsed, &ground));
    return ground;
  }
  TermId T(std::string_view text) { return *ParseTerm(store_, text); }
  TermStore store_;
};

TEST_F(WeakStratificationTest, LocallyStratifiedProgramsAccepted) {
  WeakStratificationResult r = ComputeWeaklyPerfectModel(
      G("w(1) :- m(1,2), ~w(2). m(1,2). t :- ~w(1)."));
  ASSERT_TRUE(r.weakly_stratified) << r.reason;
  EXPECT_TRUE(r.model.IsTrue(T("w(1)")));
  EXPECT_TRUE(r.model.IsFalse(T("w(2)")));
  EXPECT_TRUE(r.model.IsFalse(T("t")));
}

// The ground shape of Example 6.4 (after instantiation): p(a) recurses
// negatively through itself, but the recursion evaporates once p(b) — a
// plain fact — settles. Weakly stratified; the weakly perfect model
// matches the paper: p(b) true, p(a) false.
TEST_F(WeakStratificationTest, Example64GroundIsWeaklyStratified) {
  WeakStratificationResult r = ComputeWeaklyPerfectModel(
      G("p(a) :- ~p(b), ~p(a). p(e) :- ~p(a), ~p(b). p(b)."));
  ASSERT_TRUE(r.weakly_stratified) << r.reason;
  EXPECT_TRUE(r.model.IsTrue(T("p(b)")));
  EXPECT_TRUE(r.model.IsFalse(T("p(a)")));
  EXPECT_TRUE(r.model.IsFalse(T("p(e)")));
  // First layer settles p(b) alone.
  ASSERT_FALSE(r.layers.empty());
  EXPECT_EQ(r.layers[0], (std::vector<TermId>{T("p(b)")}));
}

// ... and the full HiLog Example 6.4 is weakly stratified at the ground
// level while Figure 1 rejects it — the paper's contrast, end to end.
TEST_F(WeakStratificationTest, Example64ContrastWithModular) {
  ParseResult<Program> parsed = ParseProgram(
      store_,
      "P(X) :- t(X,Y,Z,P), ~P(Y), ~P(Z)."
      "t(a,b,a,p). t(e,a,b,p)."
      "P(b) :- t(X,Y,b,P).");
  ASSERT_TRUE(parsed.ok());
  ModularResult modular =
      CheckModularHiLog(store_, *parsed, ModularOptions());
  EXPECT_FALSE(modular.modularly_stratified);

  RelevanceGroundingResult ground =
      GroundWithRelevance(store_, *parsed, BottomUpOptions());
  ASSERT_TRUE(ground.ok) << ground.error;
  WeakStratificationResult weak =
      ComputeWeaklyPerfectModel(ground.program);
  ASSERT_TRUE(weak.weakly_stratified) << weak.reason;
  EXPECT_TRUE(weak.model.IsTrue(T("p(b)")));
  EXPECT_TRUE(weak.model.IsFalse(T("p(a)")));
}

TEST_F(WeakStratificationTest, GenuineNegativeLoopRejected) {
  WeakStratificationResult r =
      ComputeWeaklyPerfectModel(G("u :- ~u."));
  EXPECT_FALSE(r.weakly_stratified);
  WeakStratificationResult r2 = ComputeWeaklyPerfectModel(
      G("w(a) :- m(a,b), ~w(b). w(b) :- m(b,a), ~w(a). m(a,b). m(b,a)."));
  EXPECT_FALSE(r2.weakly_stratified);
}

TEST_F(WeakStratificationTest, Example32IsNotWeaklyStratified) {
  // Two stable models, all-undefined WFS: no weakly perfect model.
  WeakStratificationResult r = ComputeWeaklyPerfectModel(
      G("p :- ~q. q :- ~p. r :- p. r :- q."));
  EXPECT_FALSE(r.weakly_stratified);
}

TEST_F(WeakStratificationTest, AgreesWithWfsWhenAccepted) {
  const char* programs[] = {
      "a :- ~b. b :- c. c.",
      "p(a) :- ~p(b), ~p(a). p(b).",
      "x :- y, ~z. y. z :- ~y.",
      "w(1) :- m(1,2), ~w(2). w(2) :- m(2,3), ~w(3). m(1,2). m(2,3).",
  };
  for (const char* text : programs) {
    GroundProgram ground = G(text);
    WeakStratificationResult weak = ComputeWeaklyPerfectModel(ground);
    if (!weak.weakly_stratified) continue;
    WfsResult wfs = ComputeWfsAlternating(ground);
    EXPECT_TRUE(wfs.model.IsTotal()) << text;
    for (TermId atom : wfs.model.atoms().atoms()) {
      EXPECT_EQ(weak.model.Value(atom), wfs.model.Value(atom))
          << text << "\n" << store_.ToString(atom);
    }
  }
}

class WeakPropertyTest : public ::testing::TestWithParam<unsigned> {};

// Soundness sweep: whenever the construction accepts a random ground
// program, its model equals the (then total) well-founded model; and
// every modularly-stratifiable random game is also weakly stratified
// after grounding (modular stratification is the stronger notion on this
// family).
TEST_P(WeakPropertyTest, SoundOnRandomGroundPrograms) {
  TermStore store;
  std::string text = hilog::testing::RandomGroundProgram(GetParam());
  auto parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok());
  GroundProgram ground;
  ASSERT_TRUE(ToGroundProgram(store, *parsed, &ground));
  WeakStratificationResult weak = ComputeWeaklyPerfectModel(ground);
  WfsResult wfs = ComputeWfsAlternating(ground);
  if (weak.weakly_stratified) {
    EXPECT_TRUE(wfs.model.IsTotal()) << text;
    for (TermId atom : wfs.model.atoms().atoms()) {
      EXPECT_EQ(weak.model.Value(atom), wfs.model.Value(atom))
          << text << "\n" << store.ToString(atom);
    }
  } else {
    // Rejection must never happen on locally stratified inputs.
    EXPECT_FALSE(IsLocallyStratified(ground)) << text;
  }
}

TEST_P(WeakPropertyTest, ModularGamesAreWeaklyStratified) {
  TermStore store;
  std::string text = hilog::testing::RandomGameProgram(GetParam());
  auto parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok());
  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  ASSERT_TRUE(ground.ok);
  WeakStratificationResult weak =
      ComputeWeaklyPerfectModel(ground.program);
  EXPECT_TRUE(weak.weakly_stratified) << text << "\n" << weak.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakPropertyTest,
                         ::testing::Range(1u, 41u));

}  // namespace
}  // namespace hilog
