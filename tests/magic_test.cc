// Tests for Section 6.1: the magic-sets rewriting (Example 6.6) and its
// bottom-up evaluation, including the negative-dependency (dn/dn'/box)
// machinery and the detection behaviour on non-modularly-stratified
// programs (the paper's discussion of Example 6.4).

#include "src/transform/magic.h"

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/eval/magic_eval.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace hilog {
namespace {

class MagicTest : public ::testing::Test {
 protected:
  Program P(std::string_view text) {
    ParseResult<Program> parsed = ParseProgram(store_, text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return *parsed;
  }
  TermId T(std::string_view text) { return *ParseTerm(store_, text); }

  MagicEvalResult Eval(std::string_view program_text,
                       std::string_view query_text) {
    Program p = P(program_text);
    MagicRewriteOptions options;
    options.edb_names = FactOnlyPredicates(store_, p);
    MagicProgram magic = MagicRewrite(store_, p, T(query_text), options);
    return EvaluateMagic(store_, magic, MagicEvalOptions());
  }

  TermStore store_;
};

// Example 6.6: the abbreviated game program
//   w(M)(X) :- g(M), M(X,Y), ~w(M)(Y).     query ?- w(m)(a)
// with g, m declared EDB. The rewriting must produce the paper's rule
// set: the seed, sup_{1,0..3}, the answer rule, two magic rules, the
// dp/dn bookkeeping, and the dns rules (plus the native box rule).
TEST_F(MagicTest, Example66RewrittenRuleShapes) {
  Program p = P("w(M)(X) :- g(M), M(X,Y), ~w(M)(Y).");
  MagicRewriteOptions options;
  options.edb_names.insert(T("g"));
  options.edb_names.insert(T("m"));
  MagicProgram magic = MagicRewrite(store_, p, T("w(m)(a)"), options);

  std::vector<std::string> rendered;
  for (const Rule& rule : magic.rules.rules) {
    rendered.push_back(RuleToString(store_, rule));
  }
  auto has = [&](std::string_view needle) {
    for (const std::string& r : rendered) {
      if (r.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  // Seed magic(w(m)(a), '+').
  EXPECT_TRUE(has("magic(w(m)(a),+)")) << ProgramToString(store_,
                                                          magic.rules);
  // sup_{1,0}(M,X) <- magic(w(M)(X), S).
  EXPECT_TRUE(has("sup_0_0(M,X) :- magic(w(M)(X)"));
  // sup chain: g(M) consumed directly (EDB, no magic for it).
  EXPECT_TRUE(has("sup_0_1(M,X) :- sup_0_0(M,X), g(M)"));
  EXPECT_FALSE(has("magic(g(M)"));
  // magic(M(X,Y), '+') <- sup_{1,1}(M,X): variable-named subgoals are IDB.
  EXPECT_TRUE(has("magic(M(X,Y),+) :- sup_0_1(M,X)"));
  EXPECT_TRUE(has("sup_0_2(M,X,Y) :- sup_0_1(M,X), M(X,Y)"));
  // magic(w(M)(Y), '-') <- sup_{1,2}(M,X,Y).
  EXPECT_TRUE(has("magic(w(M)(Y),-) :- sup_0_2(M,X,Y)"));
  // The negative subgoal is consumed as box(w(M)(Y)).
  EXPECT_TRUE(has("sup_0_3(M,X) :- sup_0_2(M,X,Y), box(w(M)(Y))"));
  // Answer rule.
  EXPECT_TRUE(has("w(M)(X) :- sup_0_3(M,X)"));
  // dp/dn bookkeeping for the IDB subgoals.
  EXPECT_TRUE(has("dp(w(M)(X),M(X,Y)) :- magic(w(M)(X),-), sup_0_1(M,X)"));
  EXPECT_TRUE(has("dn(w(M)(X),w(M)(Y)) :- magic(w(M)(X),-), sup_0_2(M,X,Y)"));
  // Transitive variants via dp(P, w(M)(X)).
  EXPECT_TRUE(has("dn(#P0,w(M)(Y)) :- dp(#P0,w(M)(X)), sup_0_2(M,X,Y)"));
  // Settledness rules.
  EXPECT_TRUE(has("dns(#Q) :- magic(#Q,-), #Q"));
  EXPECT_TRUE(has("dns(#Q) :- magic(#Q,-), box(#Q)"));
  // The native box rule is documented.
  EXPECT_NE(magic.BoxRuleDescription(store_).find("forall Q"),
            std::string::npos);
}

TEST_F(MagicTest, Example66QueryEvaluation) {
  // Full game: m acyclic chain a->b->c. w(m)(c) false, w(m)(b) true,
  // w(m)(a) false.
  const char* game =
      "w(M)(X) :- g(M), M(X,Y), ~w(M)(Y)."
      "g(m). m(a,b). m(b,c).";
  EXPECT_EQ(Eval(game, "w(m)(b)").ground_status, QueryStatus::kTrue);
  EXPECT_EQ(Eval(game, "w(m)(a)").ground_status, QueryStatus::kSettledFalse);
  EXPECT_EQ(Eval(game, "w(m)(c)").ground_status, QueryStatus::kSettledFalse);
}

TEST_F(MagicTest, OpenQueryEnumeratesAnswers) {
  const char* game =
      "w(M)(X) :- g(M), M(X,Y), ~w(M)(Y)."
      "g(m). m(a,b). m(b,c). m(c,d).";
  MagicEvalResult result = Eval(game, "w(m)(X)");
  // Winning positions: c (move to lost d) and a (move to b... b moves to
  // c which wins, so b is lost; a moves to lost b: a wins).
  std::vector<std::string> answers;
  for (TermId a : result.answers) answers.push_back(store_.ToString(a));
  std::sort(answers.begin(), answers.end());
  EXPECT_EQ(answers,
            (std::vector<std::string>{"w(m)(a)", "w(m)(c)"}));
}

TEST_F(MagicTest, DefiniteProgramQuery) {
  const char* tc =
      "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
      "e(1,2). e(2,3). e(3,4).";
  MagicEvalResult r1 = Eval(tc, "t(1,4)");
  EXPECT_EQ(r1.ground_status, QueryStatus::kTrue);
  MagicEvalResult r2 = Eval(tc, "t(1,X)");
  EXPECT_EQ(r2.answers.size(), 3u);
  MagicEvalResult r3 = Eval(tc, "t(4,1)");
  // No derivation; no negation involved, so the atom is never negatively
  // called — for a pure positive query, failure shows as no answers.
  EXPECT_TRUE(r3.answers.empty());
}

TEST_F(MagicTest, MagicIsQueryDirected) {
  // Two disconnected components; querying one must not derive answer
  // facts for the other.
  const char* tc =
      "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
      "e(1,2). e(2,3). e(10,11). e(11,12).";
  Program p = P(tc);
  MagicRewriteOptions options;
  options.edb_names = FactOnlyPredicates(store_, p);
  MagicProgram magic = MagicRewrite(store_, p, T("t(1,X)"), options);
  MagicEvalResult result = EvaluateMagic(store_, magic, MagicEvalOptions());
  EXPECT_EQ(result.answers.size(), 2u);
  for (TermId a : result.answers) {
    EXPECT_EQ(store_.ToString(a).find("t(1"), 0u) << store_.ToString(a);
  }
}

TEST_F(MagicTest, HiLogParameterizedQueryWithVariableName) {
  // Strongly range-restricted programs permit queries with variables in
  // predicate names (Section 6.1): enumerate both games.
  const char* games =
      "w(M)(X) :- g(M), M(X,Y), ~w(M)(Y)."
      "g(m1). g(m2). m1(a,b). m2(x,y). m2(y,z).";
  MagicEvalResult result = Eval(games, "w(G)(a)");
  std::vector<std::string> answers;
  for (TermId a : result.answers) answers.push_back(store_.ToString(a));
  std::sort(answers.begin(), answers.end());
  EXPECT_EQ(answers, (std::vector<std::string>{"w(m1)(a)"}));
}

// The paper (end of 6.1): the method does not work for Example 6.4-style
// programs — it "would notice the negative dependency of p(a) on itself
// ... and not get as far as checking p(b)". Our evaluator reports the
// query as unsettled rather than returning a wrong answer.
TEST_F(MagicTest, Example64QueryStaysUnsettled) {
  const char* program =
      "p(X) :- t(X,Y,Z), ~p(Y), ~p(Z)."
      "t(a,b,a)."
      "p(b) :- t(X,Y,b).";
  MagicEvalResult result = Eval(program, "p(a)");
  EXPECT_EQ(result.ground_status, QueryStatus::kUnsettled);
  EXPECT_FALSE(result.unsettled_negative_calls.empty());
}

TEST_F(MagicTest, FlounderingOpenQueryYieldsNoAnswers) {
  // With the body ordered negation-first and an *open* query, the
  // negative call magic(q(X),'-') stays non-ground (floundering): the
  // evaluator cannot settle it and produces no (wrong) answers.
  const char* bad = "p(X) :- ~q(X), r(X). r(a).";
  MagicEvalResult open = Eval(bad, "p(X)");
  EXPECT_TRUE(open.answers.empty());
  // A ground call binds X from the head, so the same rule works: q(a) has
  // no rules, is boxed, and p(a) succeeds.
  MagicEvalResult closed = Eval(bad, "p(a)");
  EXPECT_EQ(closed.ground_status, QueryStatus::kTrue);
}

TEST_F(MagicTest, QueriesOnEdbRelationsAnswerDirectly) {
  // With the engine's shared-EDB path, EDB facts are preloaded rather
  // than copied into the rewritten program; querying the EDB relation
  // itself must still enumerate its tuples.
  Engine engine;
  ASSERT_EQ(engine.Load("e(1,2). e(1,3). e(2,3). t(X,Y) :- e(X,Y)."), "");
  Engine::QueryAnswer direct = engine.Query("e(1,X)");
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_EQ(direct.answers.size(), 2u);
  Engine::QueryAnswer ground = engine.Query("e(2,3)");
  EXPECT_EQ(ground.ground_status, QueryStatus::kTrue);
  Engine::QueryAnswer miss = engine.Query("e(3,2)");
  EXPECT_EQ(miss.ground_status, QueryStatus::kSettledFalse);
  // Repeated queries reuse the cache and keep answering.
  for (int i = 0; i < 3; ++i) {
    Engine::QueryAnswer again = engine.Query("t(1,X)");
    EXPECT_EQ(again.answers.size(), 2u);
  }
  // Adding rules invalidates the cache.
  ASSERT_EQ(engine.LoadMore("e(3,4)."), "");
  Engine::QueryAnswer fresh = engine.Query("t(3,X)");
  EXPECT_EQ(fresh.answers.size(), 1u);
}

TEST_F(MagicTest, FactOnlyPredicatesDetection) {
  Program p = P("e(1,2). e(2,3). g(m). t(X,Y) :- e(X,Y). w :- t(1,2).");
  auto edb = FactOnlyPredicates(store_, p);
  EXPECT_TRUE(edb.count(T("e")) > 0);
  EXPECT_TRUE(edb.count(T("g")) > 0);
  EXPECT_FALSE(edb.count(T("t")) > 0);
  EXPECT_FALSE(edb.count(T("w")) > 0);
}

TEST_F(MagicTest, StratifiedNegationThroughTwoLevels) {
  const char* program =
      "top(X) :- mid(X), ~bot(X)."
      "mid(X) :- base(X), ~excl(X)."
      "base(1). base(2). base(3). excl(2). bot(3).";
  EXPECT_EQ(Eval(program, "top(1)").ground_status, QueryStatus::kTrue);
  EXPECT_EQ(Eval(program, "top(2)").ground_status,
            QueryStatus::kSettledFalse);
  EXPECT_EQ(Eval(program, "top(3)").ground_status,
            QueryStatus::kSettledFalse);
}

TEST_F(MagicTest, DeepNegationChainSettlesInOrder) {
  // w-chain of length 8 requires alternating box firings.
  std::string program = "w(X) :- m(X,Y), ~w(Y).";
  for (int i = 0; i < 8; ++i) {
    program += "m(" + std::to_string(i) + "," + std::to_string(i + 1) + ").";
  }
  // Chain 0 -> 1 -> ... -> 8: w(8) false, w(7) true, alternating; so
  // w(1) is won and w(0) is lost.
  MagicEvalResult odd = Eval(program, "w(1)");
  EXPECT_EQ(odd.ground_status, QueryStatus::kTrue);
  MagicEvalResult even = Eval(program, "w(0)");
  EXPECT_EQ(even.ground_status, QueryStatus::kSettledFalse);
}

}  // namespace
}  // namespace hilog
