// Stress test for the concurrent query service, designed to run under
// ThreadSanitizer in CI: many worker threads answering many queries
// against one published snapshot (answers must equal the sequential
// engine's), deadline storms racing cancellation against completion, and
// a publisher swapping epochs mid-flight while clients hammer the server
// over real sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/service/executor.h"
#include "src/service/server.h"
#include "src/service/snapshot.h"
#include "src/service/wire.h"

namespace hilog {
namespace {

using service::ExecutorOptions;
using service::LineServer;
using service::QueryExecutor;
using service::QueryResponse;
using service::ServerOptions;
using service::ServiceStatus;
using service::SnapshotStore;

std::string WinChainSlice(int lo, int hi) {
  std::string text;
  for (int i = lo; i < hi; ++i) {
    std::string x = std::to_string(i);
    std::string y = std::to_string(i + 1);
    text += "w(n" + x + ") :- m(n" + x + ",n" + y + "), ~w(n" + y + ").\n";
    text += "m(n" + x + ",n" + y + ").\n";
  }
  return text;
}

std::string HiLogGame(int games, int positions) {
  std::string text = "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y).\n";
  for (int g = 0; g < games; ++g) {
    std::string mv = "mv" + std::to_string(g);
    text += "game(" + mv + ").\n";
    for (int i = 0; i < positions; ++i) {
      text += mv + "(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
              ").\n";
    }
  }
  return text;
}

std::vector<std::string> SequentialAnswers(const std::string& program,
                                           const std::string& query) {
  Engine engine;
  EXPECT_EQ(engine.Load(program), "");
  Engine::QueryAnswer answer = engine.Query(query);
  EXPECT_TRUE(answer.ok) << query << ": " << answer.error;
  std::vector<std::string> rendered;
  for (TermId atom : answer.answers) {
    rendered.push_back(engine.store().ToString(atom));
  }
  return rendered;
}

// N worker threads x M queries each (the Example 6.1 win chain plus the
// magic-rewritten HiLog game), one snapshot, answers checked against the
// sequential engine.
TEST(ServiceStressTest, ManyThreadsManyQueriesOneSnapshot) {
  const int kChain = 32;
  const int kGames = 2;
  const int kPositions = 10;
  const std::string program =
      WinChainSlice(0, kChain) + HiLogGame(kGames, kPositions);

  std::vector<std::string> queries;
  for (int i = 0; i < kChain; ++i) {
    queries.push_back("w(n" + std::to_string(i) + ")");
  }
  for (int g = 0; g < kGames; ++g) {
    for (int i = 0; i < kPositions; ++i) {
      queries.push_back("winning(mv" + std::to_string(g) + ")(n" +
                        std::to_string(i) + ")");
    }
  }
  std::vector<std::vector<std::string>> expected;
  for (const std::string& q : queries) {
    expected.push_back(SequentialAnswers(program, q));
  }

  auto snapshots = std::make_shared<SnapshotStore>();
  ASSERT_EQ(snapshots->Publish(program, false, false), "");
  ExecutorOptions options;
  options.threads = 8;
  options.queue_capacity = 4096;
  options.engine.trace_capacity = 512;  // Exercise the trace-merge path.
  QueryExecutor executor(snapshots, options);

  const int kRounds = 8;  // kRounds * |queries| total requests.
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(kRounds * queries.size());
  for (int r = 0; r < kRounds; ++r) {
    for (const std::string& q : queries) {
      futures.push_back(executor.Submit({q, 0, {}}));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse got = futures[i].get();
    const size_t qi = i % queries.size();
    ASSERT_EQ(got.status, ServiceStatus::kOk)
        << queries[qi] << ": " << got.error;
    ASSERT_EQ(got.answers, expected[qi]) << queries[qi];
  }
  executor.Shutdown();
  EXPECT_EQ(executor.stats().ok, futures.size());
  // The merged registry saw every query exactly once.
  EXPECT_EQ(executor.AggregatedMetrics().value(obs::Counter::kQueries),
            futures.size());
}

// Deadline storm: short deadlines race completion on every query; each
// must resolve as ok (with the exact sequential answers) or as a clean
// timeout — never an error, never a hang, and the workers stay healthy.
TEST(ServiceStressTest, DeadlineStormNeverCorrupts) {
  const int kChain = 3000;
  const std::string program = WinChainSlice(0, kChain);
  auto snapshots = std::make_shared<SnapshotStore>();
  ASSERT_EQ(snapshots->Publish(program, false, false), "");
  ExecutorOptions options;
  options.threads = 4;
  options.queue_capacity = 4096;
  QueryExecutor executor(snapshots, options);

  // The answer near the tail is cheap and known: w(n2999) is true.
  const std::string tail_query = "w(n" + std::to_string(kChain - 1) + ")";

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 200; ++i) {
    // Alternate expensive head-of-chain queries under a 1-2 ms deadline
    // with undeadlined cheap tail queries.
    if (i % 2 == 0) {
      futures.push_back(executor.Submit({"w(n0)", 1 + (i % 3), {}}));
    } else {
      futures.push_back(executor.Submit({tail_query, 0, {}}));
    }
  }
  size_t ok = 0;
  size_t timeout = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse got = futures[i].get();
    if (got.status == ServiceStatus::kTimeout) {
      ++timeout;
      continue;
    }
    ASSERT_EQ(got.status, ServiceStatus::kOk) << got.error;
    ++ok;
    if (i % 2 == 1) {
      ASSERT_EQ(got.answers.size(), 1u);
      EXPECT_EQ(got.answers[0], tail_query);
    }
  }
  EXPECT_EQ(ok + timeout, futures.size());
  // All the undeadlined queries succeeded regardless of the storm.
  EXPECT_GE(ok, futures.size() / 2);
  executor.Shutdown();
}

// Publisher swaps epochs while socket clients hammer the server; every
// response must carry answers consistent with the epoch it reports.
TEST(ServiceStressTest, ServerEpochSwapUnderClientLoad) {
  const int kBase = 10;
  const int kSteps = 3;
  const int kPerStep = 4;
  auto snapshots = std::make_shared<SnapshotStore>();
  ASSERT_EQ(snapshots->Publish(WinChainSlice(0, kBase), false, false), "");
  // programs[e-1] is the text at epoch e.
  std::vector<std::string> programs;
  for (int s = 0; s <= kSteps; ++s) {
    programs.push_back(WinChainSlice(0, kBase + s * kPerStep));
  }
  // expected[e-1][q]: sequential answers per epoch for the base queries.
  std::vector<std::map<std::string, std::vector<std::string>>> expected(
      programs.size());
  std::vector<std::string> queries;
  for (int i = 0; i < kBase; ++i) {
    queries.push_back("w(n" + std::to_string(i) + ")");
  }
  for (size_t e = 0; e < programs.size(); ++e) {
    for (const std::string& q : queries) {
      expected[e][q] = SequentialAnswers(programs[e], q);
    }
  }

  ExecutorOptions options;
  options.threads = 4;
  options.queue_capacity = 1024;
  auto executor = std::make_shared<QueryExecutor>(snapshots, options);
  ServerOptions server_options;
  server_options.port = 0;
  server_options.solve_wfs = false;
  LineServer server(snapshots, executor, server_options);
  ASSERT_EQ(server.Start(), "");

  std::atomic<bool> publishing_done{false};
  std::thread publisher([&] {
    for (int s = 1; s <= kSteps; ++s) {
      std::string slice =
          WinChainSlice(kBase + (s - 1) * kPerStep, kBase + s * kPerStep);
      ASSERT_EQ(snapshots->Publish(slice, /*append=*/true, false), "");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    publishing_done.store(true);
  });

  const int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(server.port()));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) != 0) {
        failures[c] = "connect failed";
        if (fd >= 0) ::close(fd);
        return;
      }
      std::string buffer;
      int sent_queries = 0;
      while (sent_queries < 40 || !publishing_done.load()) {
        const std::string& q = queries[sent_queries % queries.size()];
        std::string line = "{\"op\":\"query\",\"q\":\"" + q + "\"}\n";
        if (::send(fd, line.data(), line.size(), 0) < 0) {
          failures[c] = "send failed";
          break;
        }
        while (buffer.find('\n') == std::string::npos) {
          char chunk[4096];
          ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n <= 0) {
            failures[c] = "recv failed";
            ::close(fd);
            return;
          }
          buffer.append(chunk, static_cast<size_t>(n));
        }
        std::string response = buffer.substr(0, buffer.find('\n'));
        buffer.erase(0, buffer.find('\n') + 1);
        // Decode just enough: epoch and the answers array.
        service::JsonValue value;
        std::string error;
        if (!service::ParseJson(response, &value, &error) ||
            value.GetString("status") != "ok") {
          failures[c] = "bad response: " + response;
          break;
        }
        const uint64_t epoch = value.GetUint("epoch");
        if (epoch < 1 || epoch > programs.size()) {
          failures[c] = "epoch out of range: " + response;
          break;
        }
        std::vector<std::string> answers;
        if (const service::JsonValue* arr = value.Get("answers")) {
          for (const service::JsonValue& a : arr->array) {
            answers.push_back(a.string);
          }
        }
        if (answers != expected[epoch - 1][q]) {
          failures[c] = "answers inconsistent with epoch " +
                        std::to_string(epoch) + " for " + q;
          break;
        }
        ++sent_queries;
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  publisher.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  server.Stop();
  executor->Shutdown();
  EXPECT_GE(executor->stats().ok, static_cast<uint64_t>(kClients * 40));
}

}  // namespace
}  // namespace hilog
