// Tests for the stratified (iterated least-fixpoint / perfect-model)
// evaluator, and its agreement with the well-founded semantics on
// stratified programs — the classic result the paper builds on ("a
// stratified program has a well defined semantics given by the Herbrand
// model constructed by taking least fixpoints at successively higher
// levels", Section 1).

#include "src/eval/stratified.h"

#include <gtest/gtest.h>

#include "random_programs.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"

namespace hilog {
namespace {

class StratifiedEvalTest : public ::testing::Test {
 protected:
  Program P(std::string_view text) {
    ParseResult<Program> parsed = ParseProgram(store_, text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return *parsed;
  }
  TermId T(std::string_view text) { return *ParseTerm(store_, text); }
  TermStore store_;
};

TEST_F(StratifiedEvalTest, TwoStrata) {
  Program p = P("q(a). q(b). r(a). p(X) :- q(X), ~r(X).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.strata, 2u);
  EXPECT_TRUE(result.facts.Contains(T("p(b)")));
  EXPECT_FALSE(result.facts.Contains(T("p(a)")));
}

TEST_F(StratifiedEvalTest, RecursionWithinStratum) {
  Program p = P(
      "e(1,2). e(2,3). e(3,4). blocked(3)."
      "reach(1)."
      "reach(Y) :- reach(X), e(X,Y), ~blocked(Y).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.facts.Contains(T("reach(2)")));
  EXPECT_FALSE(result.facts.Contains(T("reach(3)")));
  EXPECT_FALSE(result.facts.Contains(T("reach(4)")));
}

TEST_F(StratifiedEvalTest, ThreeStrataChain) {
  Program p = P(
      "base(1). base(2). base(3)."
      "bad(2)."
      "good(X) :- base(X), ~bad(X)."
      "best(X) :- good(X), ~worst(X)."
      "worst(3).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.facts.Contains(T("best(1)")));
  EXPECT_FALSE(result.facts.Contains(T("best(2)")));
  EXPECT_FALSE(result.facts.Contains(T("best(3)")));
}

TEST_F(StratifiedEvalTest, RejectsUnstratified) {
  Program p = P("w(X) :- m(X,Y), ~w(Y). m(a,b).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not stratified"), std::string::npos);
}

TEST_F(StratifiedEvalTest, RejectsUnsafePrograms) {
  Program p = P("p(X) :- ~q(X). q(a).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  EXPECT_FALSE(result.ok);
}

TEST_F(StratifiedEvalTest, RejectsVariableHeadNamesUnderNegation) {
  Program p = P("X(b) :- p(X), ~q(b). p(r). q(a).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("head predicate name"), std::string::npos);
}

TEST_F(StratifiedEvalTest, HiLogPositiveProgramsAllowed) {
  // Without negation, variable-named heads are fine (pure least model).
  Program p = P(
      "graph(e). e(1,2). e(2,3)."
      "tc(G,X,Y) :- graph(G), G(X,Y)."
      "tc(G,X,Y) :- graph(G), G(X,Z), tc(G,Z,Y).");
  StratifiedEvalResult result =
      EvaluateStratified(store_, p, BottomUpOptions());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.facts.Contains(T("tc(e,1,3)")));
}

class StratifiedAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StratifiedAgreementTest, MatchesWellFoundedModel) {
  TermStore store;
  // Filter the random programs down to stratified, safe ones.
  std::string text =
      hilog::testing::RandomRangeRestrictedNormalProgram(GetParam());
  auto parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  StratifiedEvalResult stratified =
      EvaluateStratified(store, *parsed, BottomUpOptions());
  if (!stratified.ok) return;  // Not stratified: nothing to compare.

  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  ASSERT_TRUE(ground.ok) << ground.error;
  WfsResult wfs = ComputeWfsAlternating(ground.program);
  EXPECT_TRUE(wfs.model.IsTotal()) << text;
  for (TermId atom : wfs.model.TrueAtoms()) {
    EXPECT_TRUE(stratified.facts.Contains(atom))
        << text << "\n" << store.ToString(atom);
  }
  for (TermId atom : stratified.facts.facts()) {
    EXPECT_TRUE(wfs.model.IsTrue(atom))
        << text << "\n" << store.ToString(atom);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedAgreementTest,
                         ::testing::Range(1u, 41u));

}  // namespace
}  // namespace hilog
