// Randomized property tests for Section 6 (parameterized over seeds):
//  - Theorem 6.1: modularly stratified for HiLog => the procedure's model
//    is the total WFS and the unique stable model;
//  - Lemma 6.2: the HiLog procedure and the normal-program definition
//    agree on normal programs;
//  - cyclic game data is rejected, acyclic accepted.

#include <gtest/gtest.h>

#include "random_programs.h"
#include "src/analysis/modular.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"
#include "src/wfs/stable.h"

namespace hilog {
namespace {

class ModularPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModularPropertyTest, Theorem61OnRandomGames) {
  TermStore store;
  std::string text = testing::RandomGameProgram(GetParam());
  ParseResult<Program> parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ModularResult modular =
      CheckModularHiLog(store, *parsed, ModularOptions());
  ASSERT_TRUE(modular.modularly_stratified) << text << "\n" << modular.reason;

  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  ASSERT_TRUE(ground.ok) << ground.error;
  WfsResult wfs = ComputeWfsAlternating(ground.program);
  EXPECT_TRUE(wfs.model.IsTotal()) << text;
  for (TermId atom : wfs.model.TrueAtoms()) {
    EXPECT_TRUE(modular.model.IsTrue(atom))
        << text << "\n" << store.ToString(atom);
  }
  for (TermId atom : modular.model.true_atoms().facts()) {
    EXPECT_TRUE(wfs.model.IsTrue(atom))
        << text << "\n" << store.ToString(atom);
  }

  StableModelsResult stable =
      EnumerateStableModels(ground.program, StableOptions());
  ASSERT_TRUE(stable.complete) << text;
  ASSERT_EQ(stable.models.size(), 1u) << text;
  std::vector<TermId> wfs_true = wfs.model.TrueAtoms();
  std::sort(wfs_true.begin(), wfs_true.end());
  EXPECT_EQ(stable.models[0].true_atoms, wfs_true) << text;
}

TEST_P(ModularPropertyTest, CyclicGamesAreRejected) {
  TermStore store;
  std::string text = testing::RandomGameProgram(GetParam(), /*cyclic=*/true);
  ParseResult<Program> parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ModularResult modular =
      CheckModularHiLog(store, *parsed, ModularOptions());
  EXPECT_FALSE(modular.modularly_stratified) << text;
}

TEST_P(ModularPropertyTest, Lemma62OnRandomNormalPrograms) {
  TermStore store;
  std::string text =
      testing::RandomRangeRestrictedNormalProgram(GetParam());
  ParseResult<Program> parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ModularResult normal = CheckModularNormal(store, *parsed, ModularOptions());
  ModularResult hilog = CheckModularHiLog(store, *parsed, ModularOptions());
  EXPECT_EQ(normal.modularly_stratified, hilog.modularly_stratified)
      << text << "\nnormal: " << normal.reason << "\nhilog: " << hilog.reason;
  if (normal.modularly_stratified && hilog.modularly_stratified) {
    for (TermId atom : normal.model.true_atoms().facts()) {
      EXPECT_TRUE(hilog.model.IsTrue(atom))
          << text << "\n" << store.ToString(atom);
    }
    for (TermId atom : hilog.model.true_atoms().facts()) {
      EXPECT_TRUE(normal.model.IsTrue(atom))
          << text << "\n" << store.ToString(atom);
    }
  }
}

TEST_P(ModularPropertyTest, AcceptedProgramsHaveTotalWfs) {
  // Whenever the procedure accepts a random normal program, its WFS is
  // total (the contrapositive direction of Theorem 6.1's guarantee).
  TermStore store;
  std::string text =
      testing::RandomRangeRestrictedNormalProgram(GetParam() + 1000);
  ParseResult<Program> parsed = ParseProgram(store, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ModularResult modular =
      CheckModularHiLog(store, *parsed, ModularOptions());
  if (!modular.modularly_stratified) return;
  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  ASSERT_TRUE(ground.ok) << ground.error;
  WfsResult wfs = ComputeWfsAlternating(ground.program);
  EXPECT_TRUE(wfs.model.IsTotal()) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularPropertyTest,
                         ::testing::Range(1u, 41u));

}  // namespace
}  // namespace hilog
