#include "src/obs/histogram.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace hilog::obs {
namespace {

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds {0, 1}; bucket i holds [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 1u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(7), 2u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 9u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  // Everything at/above 2^47 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1ull << 47), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBucketCount - 1);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusivePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(9), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            UINT64_MAX);
  // Every value indexes into a bucket whose bound covers it.
  for (uint64_t v : {0ull, 1ull, 5ull, 100ull, 123456789ull}) {
    EXPECT_LE(v, Histogram::BucketUpperBound(Histogram::BucketIndex(v)));
  }
}

TEST(HistogramTest, RecordAccumulatesCountAndSum) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Record(0);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1005u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(1000)), 1u);
}

TEST(HistogramTest, PercentileStaysInsideTheSampleBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);  // Bucket [512, 1023].
  const double p50 = h.Percentile(50);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
  EXPECT_LE(p50, p99);
}

TEST(HistogramTest, PercentileSeparatesTwoModes) {
  Histogram h;
  // 90 fast samples around 100ns, 10 slow ones around 1ms: p50 must sit
  // in the fast band, p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(1'000'000);
  EXPECT_LE(h.Percentile(50), 127.0);  // Bucket of 100 is [64, 127].
  EXPECT_GE(h.Percentile(99), 524288.0);  // Bucket of 1e6 starts at 2^19.
}

TEST(HistogramTest, PercentileOfEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MergeIntoAddsBucketwise) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(10);
  b.Record(10);
  b.Record(100000);
  a.MergeInto(&b);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_EQ(b.sum(), 100030u);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(10)), 3u);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(100000)), 1u);
  // The source is untouched.
  EXPECT_EQ(a.count(), 2u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(42)), 0u);
}

TEST(HistogramTest, CopyIsDeep) {
  Histogram a;
  a.Record(7);
  Histogram b = a;
  a.Record(7);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(7)), 1u);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Distinct value ranges per thread exercise different buckets.
      const uint64_t base = 1ull << (t + 2);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(base + static_cast<uint64_t>(i % 3));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(HistogramRegistryTest, RecordHistoAndMergeFlowThroughRegistry) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.RecordHisto(Histo::kQueryLatency, 1000);
  a.RecordHisto(Histo::kQueryLatency, 2000);
  b.RecordHisto(Histo::kQueryLatency, 3000);
  a.MergeInto(&b);
  EXPECT_EQ(b.histo(Histo::kQueryLatency).count(), 3u);
  EXPECT_EQ(b.histo(Histo::kQueryLatency).sum(), 6000u);
  b.Reset();
  EXPECT_EQ(b.histo(Histo::kQueryLatency).count(), 0u);
}

TEST(HistogramRegistryTest, ToJsonEmitsHistogramsAfterPhases) {
  MetricsRegistry m;
  m.RecordHisto(Histo::kQueryLatency, 1000);
  const std::string json = m.ToJson();
  const size_t phases = json.find("\"phases\"");
  const size_t histograms = json.find("\"histograms\"");
  ASSERT_NE(phases, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  EXPECT_LT(phases, histograms);
  EXPECT_NE(json.find("\"query.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

TEST(HistogramRegistryTest, PrometheusBucketsAreCumulativeAndConsistent) {
  MetricsRegistry m;
  m.RecordHisto(Histo::kQueryLatency, 100);
  m.RecordHisto(Histo::kQueryLatency, 1000);
  m.RecordHisto(Histo::kQueryLatency, 1'000'000);
  const std::string text = m.ToPrometheus();
  EXPECT_NE(text.find("# TYPE hilog_query_latency_ns histogram"),
            std::string::npos);
  // Walk the latency series: cumulative buckets never decrease and the
  // +Inf bucket equals _count.
  uint64_t previous = 0;
  uint64_t inf_value = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while ((pos = text.find("hilog_query_latency_ns_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t close = text.find("\"} ", pos);
    ASSERT_NE(close, std::string::npos);
    const std::string le =
        text.substr(pos + 34, close - (pos + 34));
    const uint64_t value = std::stoull(text.substr(close + 3));
    EXPECT_GE(value, previous) << "non-monotone cumulative bucket";
    previous = value;
    if (le == "+Inf") inf_value = value;
    ++buckets_seen;
    pos = close;
  }
  EXPECT_EQ(buckets_seen, Histogram::kBucketCount);
  EXPECT_EQ(inf_value, 3u);
  const size_t count_pos = text.find("hilog_query_latency_ns_count ");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(std::stoull(text.substr(count_pos + 29)), 3u);
}

TEST(HistogramRegistryTest, ScopedLatencyTimerRecordsIntoContext) {
  MetricsRegistry m;
  {
    ScopedObsContext ctx(&m);
    ScopedLatencyTimer timer(Histo::kEngineQuery);
  }
  EXPECT_EQ(m.histo(Histo::kEngineQuery).count(), 1u);
}

}  // namespace
}  // namespace hilog::obs
