// The parameterized game of Examples 6.1/6.3: winning(M)(X) holds when
// position X is won in game M — one generic rule for every game relation,
// negation through recursion, given meaning by the well-founded semantics
// and (for acyclic games) decided by modular stratification (Figure 1).
//
// This example runs the full pipeline the paper develops:
//   1. analysis (range restriction, stratification, Figure 1);
//   2. the well-founded model (relevance grounding + alternating fixpoint);
//   3. query-directed evaluation via the magic-sets rewriting of Ex. 6.6;
// and shows all three agreeing; then demonstrates what changes on a
// *cyclic* game (three-valued WFS, Figure 1 rejection).
//
//   ./build/examples/win_game [positions]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/engine.h"

namespace {

std::string BuildProgram(int positions) {
  std::string text =
      "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y).\n"
      "game(chain). game(braid).\n";
  // `chain`: n0 -> n1 -> ... -> nK (alternating wins).
  for (int i = 0; i < positions; ++i) {
    text += "chain(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
            ").\n";
  }
  // `braid`: every position can jump +1 or +2.
  for (int i = 0; i < positions; ++i) {
    text += "braid(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
            ").\n";
    if (i + 2 <= positions) {
      text += "braid(n" + std::to_string(i) + ",n" + std::to_string(i + 2) +
              ").\n";
    }
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  int positions = argc > 1 ? std::atoi(argv[1]) : 8;
  hilog::Engine engine;
  std::string error = engine.Load(BuildProgram(positions));
  if (!error.empty()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  hilog::AnalysisReport report = engine.Analyze();
  std::printf("stratified: %s   modularly stratified (Figure 1): %s\n",
              report.stratified ? "yes" : "no",
              report.modularly_stratified ? "yes" : "no");

  // Well-founded model over the whole program.
  hilog::Engine::WfsAnswer wfs = engine.SolveWellFounded();
  if (!wfs.ok) {
    std::fprintf(stderr, "WFS failed: %s\n", wfs.notes.c_str());
    return 1;
  }
  std::printf("\n%-10s %-14s %-14s\n", "position", "chain", "braid");
  for (int i = 0; i <= positions; ++i) {
    auto value = [&](const std::string& game) {
      std::string atom =
          "winning(" + game + ")(n" + std::to_string(i) + ")";
      hilog::TermId t = *hilog::ParseTerm(engine.store(), atom);
      switch (wfs.model.Value(t)) {
        case hilog::TruthValue::kTrue:
          return "won";
        case hilog::TruthValue::kFalse:
          return "lost";
        default:
          return "undefined";
      }
    };
    std::printf("n%-9d %-14s %-14s\n", i, value("chain"), value("braid"));
  }

  // Magic-sets query for one position; must agree with the WFS.
  hilog::Engine::QueryAnswer q = engine.Query("winning(chain)(n0)");
  std::printf("\nmagic query winning(chain)(n0): %s (%zu facts derived)\n",
              q.ground_status == hilog::QueryStatus::kTrue ? "won"
              : q.ground_status == hilog::QueryStatus::kSettledFalse
                  ? "lost"
                  : "unsettled",
              q.facts_derived);

  // A cyclic game: Figure 1 rejects it and the WFS goes three-valued.
  hilog::Engine cyclic;
  cyclic.Load(
      "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y)."
      "game(loop). loop(a,b). loop(b,a).");
  hilog::ModularResult modular = cyclic.SolveModular();
  std::printf("\ncyclic game: modularly stratified? %s\n  reason: %s\n",
              modular.modularly_stratified ? "yes" : "no",
              modular.reason.c_str());
  hilog::Engine::WfsAnswer cyclic_wfs = cyclic.SolveWellFounded();
  hilog::TermId wa = *hilog::ParseTerm(cyclic.store(), "winning(loop)(a)");
  std::printf("  winning(loop)(a) is %s in the well-founded model\n",
              cyclic_wfs.model.Value(wa) == hilog::TruthValue::kUndefined
                  ? "undefined"
                  : "defined");
  return 0;
}
