// The parts-explosion problem of Section 6: how many copies of part Y
// does part X contain, summing over all assembly paths? The paper's HiLog
// program is written *once* and dispatched over machines through the
// `assoc` relation — recursion through `sum` is meaningful because the
// subpart hierarchy is acyclic (the aggregate analog of modular
// stratification).
//
//   ./build/examples/parts_explosion

#include <cstdio>

#include "src/core/engine.h"

int main() {
  hilog::Engine engine;
  std::string error = engine.Load(R"(
    % Section 6, the parts-explosion program (verbatim modulo syntax).
    in(Mach,X,Y,null,N) :- assoc(Mach,Part), Part(X,Y,N).
    in(Mach,X,Y,Z,N)    :- assoc(Mach,Part), Part(X,Z,P),
                           contains(Mach,Z,Y,M), N = P * M.
    contains(Mach,X,Y,N) :- N = sum(P, in(Mach,X,Y,_,P)).

    % The paper's bicycle: two wheels, 47 spokes per wheel.
    assoc(bike, bikeparts).
    bikeparts(bicycle, wheel, 2).
    bikeparts(bicycle, frame, 1).
    bikeparts(wheel, spoke, 47).
    bikeparts(wheel, rim, 1).

    % A second machine sharing nothing with the bicycle, served by the
    % same three rules.
    assoc(plane, planeparts).
    planeparts(jet, wing, 2).
    planeparts(wing, flap, 3).
    planeparts(flap, actuator, 2).
  )");
  if (!error.empty()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  hilog::AggregateEvalResult result = engine.SolveAggregates();
  if (!result.error.empty()) {
    std::fprintf(stderr, "evaluation error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("converged: %s in %zu outer rounds\n",
              result.converged ? "yes" : "no", result.outer_rounds);

  hilog::TermId contains_sym = engine.store().MakeSymbol("contains");
  std::printf("\n%-8s %-10s %-10s %s\n", "machine", "whole", "part",
              "count");
  for (hilog::TermId fact : result.facts.facts()) {
    if (engine.store().PredName(fact) != contains_sym) continue;
    auto args = engine.store().apply_args(fact);
    std::printf("%-8s %-10s %-10s %s\n",
                engine.store().ToString(args[0]).c_str(),
                engine.store().ToString(args[1]).c_str(),
                engine.store().ToString(args[2]).c_str(),
                engine.store().ToString(args[3]).c_str());
  }

  // The paper's headline number.
  hilog::TermId spokes =
      *hilog::ParseTerm(engine.store(), "contains(bike,bicycle,spoke,94)");
  std::printf("\na bicycle has 94 spokes: %s\n",
              result.facts.Contains(spokes) ? "confirmed" : "WRONG");
  return 0;
}
