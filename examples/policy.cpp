// A deductive-database scenario: access-control policies with delegation.
//
// HiLog's contribution here is genericity: one `reaches` closure and one
// `may` rule work for *every* permission relation (read, write, admin),
// because relations are first-class values. Negation handles revocation;
// the program is modularly stratified, so the well-founded model is total
// and magic-sets queries are exact (Theorem 6.1 + Section 6.1).
//
//   ./build/examples/policy

#include <cstdio>

#include "src/core/engine.h"

int main() {
  hilog::Engine engine;
  std::string error = engine.Load(R"(
    % Generic delegation closure: reaches(Rel)(X,Y) iff Y is reachable
    % from X through Rel edges, stopping at revoked principals.
    reaches(Rel)(X,Y) :- perm(Rel), Rel(X,Y), ~revoked(Y).
    reaches(Rel)(X,Y) :- perm(Rel), Rel(X,Z), ~revoked(Z),
                         reaches(Rel)(Z,Y).

    % X may exercise Rel on resource R if some grant-holder delegates to
    % X transitively.
    may(Rel)(X,R) :- perm(Rel), grant(Rel,G,R), ~revoked(X),
                     reaches(Rel)(G,X).
    may(Rel)(X,R) :- perm(Rel), grant(Rel,X,R), ~revoked(X).

    % The permission relations (data, not schema!).
    perm(read). perm(write).

    % Delegation edges, per relation.
    read(alice, bob).  read(bob, carol).  read(carol, dave).
    write(alice, bob). write(bob, eve).

    % Root grants.
    grant(read,  alice, wiki).
    grant(write, alice, wiki).

    % Revocations cut delegation chains *through* them.
    revoked(carol).
  )");
  if (!error.empty()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  hilog::AnalysisReport report = engine.Analyze();
  std::printf("strongly range restricted: %s   modularly stratified: %s\n\n",
              report.strongly_range_restricted ? "yes" : "no",
              report.modularly_stratified ? "yes" : "no");

  const char* people[] = {"alice", "bob", "carol", "dave", "eve"};
  const char* rels[] = {"read", "write"};
  std::printf("%-8s %-6s %-6s\n", "user", "read", "write");
  for (const char* person : people) {
    std::printf("%-8s", person);
    for (const char* rel : rels) {
      std::string query =
          std::string("may(") + rel + ")(" + person + ", wiki)";
      hilog::Engine::QueryAnswer answer = engine.Query(query);
      if (!answer.ok) {
        std::fprintf(stderr, "query failed: %s\n", answer.error.c_str());
        return 1;
      }
      std::printf(" %-6s",
                  answer.ground_status == hilog::QueryStatus::kTrue ? "yes"
                                                                    : "no");
    }
    std::printf("\n");
  }

  // Expected: carol is revoked, so carol loses read and — because the
  // chain to dave runs through carol — dave never gains it; eve gets
  // write via bob.
  hilog::Engine::QueryAnswer dave = engine.Query("may(read)(dave, wiki)");
  hilog::Engine::QueryAnswer eve = engine.Query("may(write)(eve, wiki)");
  bool ok = dave.ground_status == hilog::QueryStatus::kSettledFalse &&
            eve.ground_status == hilog::QueryStatus::kTrue;
  std::printf("\nrevocation semantics %s\n",
              ok ? "verified" : "VIOLATED");
  return ok ? 0 : 1;
}
