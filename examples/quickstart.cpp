// Quickstart: load a HiLog program, classify it, compute its well-founded
// model, and run magic-sets queries.
//
// The program is the paper's flagship example (Example 2.1): a *generic*
// transitive-closure predicate tc(G)(X,Y), written once and applicable to
// any binary relation G — the kind of second-order idiom HiLog makes
// declarative.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/engine.h"

int main() {
  hilog::Engine engine;

  std::string error = engine.Load(R"(
    % Example 2.1: generic transitive closure.
    tc(G)(X,Y) :- G(X,Y).
    tc(G)(X,Y) :- G(X,Z), tc(G)(Z,Y).

    % Two unrelated binary relations.
    flight(sfo, jfk). flight(jfk, lhr). flight(lhr, cdg).
    parent(ann, bob). parent(bob, cal).
  )");
  if (!error.empty()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  // 1. Classify the program per the paper's taxonomy.
  hilog::AnalysisReport report = engine.Analyze();
  std::printf("range restricted (Def 5.5):          %s\n",
              report.range_restricted ? "yes" : "no");
  std::printf("strongly range restricted (Def 5.6): %s\n",
              report.strongly_range_restricted ? "yes" : "no");
  std::printf("Datahilog (Def 6.7):                 %s\n",
              report.datahilog ? "yes" : "no");

  // 2. Query both closures through the same rules — queries must bind the
  //    predicate name (Section 5's query restriction for RR programs).
  for (const char* query :
       {"tc(flight)(sfo, X)", "tc(parent)(ann, X)",
        "tc(tc(flight))(sfo, cdg)"}) {
    hilog::Engine::QueryAnswer answer = engine.Query(query);
    if (!answer.ok) {
      std::fprintf(stderr, "query error: %s\n", answer.error.c_str());
      return 1;
    }
    std::printf("?- %s\n", query);
    if (answer.answers.empty()) {
      std::printf("   (no answers)\n");
    }
    for (hilog::TermId atom : answer.answers) {
      std::printf("   %s\n", engine.store().ToString(atom).c_str());
    }
  }
  return 0;
}
