// hilog_cli — an interactive driver for the library: load HiLog rules,
// inspect the paper's classifications, compute models, and pose queries.
//
//   ./build/examples/hilog_cli [options] [file.hl]
//
// Options:
//   --stats              print the metrics table (after batch run or :quit)
//   --stats-json <file>  write the metrics registry as JSON ("-" = stdout)
//   --trace-json <file>  write the trace buffer as Chrome trace_event JSON
//   --query <atom>       batch: run a magic-sets query after loading
//   --client <addr>      talk to a running hilog_server instead of
//                        evaluating locally; <addr> is host:port or a Unix
//                        socket path (anything containing '/'). Stdin lines
//                        starting with '{' are sent as raw protocol JSON,
//                        anything else is wrapped as a query op. With
//                        --query, sends that one query and exits.
//   --deadline-ms <n>    client mode: deadline attached to wrapped queries
//   --compile-rules on|off  rule compilation to join-kernel bytecode
//                        (default on; off runs the legacy per-round loops —
//                        answers are byte-identical either way)
//   --explain-plan       batch: after loading, dump each rule's compiled
//                        kernel program and exit
//
// Passing any of the observability options together with a program file
// runs in batch mode: load, SolveWellFounded, the --query if given, emit
// stats, exit — no REPL.
//
// Commands (a line starting with ':'); anything else is parsed as rules
// and added to the program:
//   :analyze           print the Definition 4.1/5.5/5.6/6.1/6.6/6.7 report
//   :wfs               compute and print the well-founded model
//   :stable            enumerate stable models
//   :modular           run Figure 1 and print the settling rounds
//   :agg               evaluate with aggregates (parts-explosion style)
//   :query <atom>      magic-sets query
//   :stats             print the metrics collected so far
//   :list              print the current program
//   :clear             drop the program
//   :help  :quit

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analysis/lint.h"
#include "src/core/engine.h"
#include "src/lang/printer.h"
#include "src/service/wire.h"

namespace {

void PrintHelp() {
  std::puts(
      ":analyze | :wfs | :stable | :modular | :stratified | :agg | "
      ":query <atom> | :prove <atom> | :table <atom> | :domind | :lint | "
      ":stats | :list | :clear | :quit");
}

// Writes `text` to `path` ("-" = stdout). Returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text << "\n";
  return out.good();
}

void PrintAnalysis(hilog::Engine& engine) {
  hilog::AnalysisReport r = engine.Analyze();
  std::printf("normal program:                 %s\n", r.normal ? "yes" : "no");
  std::printf("normal range restricted (4.1):  %s\n",
              r.normal_range_restricted ? "yes" : "no");
  std::printf("range restricted (5.5):         %s\n",
              r.range_restricted ? "yes" : "no");
  std::printf("strongly range restricted (5.6):%s\n",
              r.strongly_range_restricted ? " yes" : " no");
  std::printf("Datahilog (6.7):                %s",
              r.datahilog ? "yes" : "no");
  if (r.datahilog) std::printf("  (|T| <= %zu)", r.datahilog_atom_bound);
  std::printf("\nstratified (6.1):               %s\n",
              r.stratified ? "yes" : "no");
  std::printf("flounders (left-to-right):      %s\n",
              r.flounders ? "yes" : "no");
  std::printf("modularly stratified (Fig. 1):  %s\n",
              r.modularly_stratified ? "yes" : "no");
  if (!r.modularly_stratified) {
    std::printf("  reason: %s\n", r.modular_reason.c_str());
  }
}

void PrintWfs(hilog::Engine& engine) {
  hilog::Engine::WfsAnswer answer = engine.SolveWellFounded();
  if (!answer.ok) {
    std::printf("error: %s\n", answer.notes.c_str());
    return;
  }
  std::printf("grounder: %s%s  (%zu ground rules)\n",
              answer.grounder == hilog::GrounderKind::kRelevance
                  ? "relevance"
                  : "bounded Herbrand",
              answer.exact ? "" : " [fragment]", answer.ground_rules);
  for (hilog::TermId atom : answer.model.TrueAtoms()) {
    std::printf("  %s\n", engine.store().ToString(atom).c_str());
  }
  auto undefined = answer.model.UndefinedAtoms();
  for (hilog::TermId atom : undefined) {
    std::printf("  %s = undefined\n", engine.store().ToString(atom).c_str());
  }
  std::printf("(%zu true, %zu undefined; unlisted atoms false)\n",
              answer.model.CountTrue(), undefined.size());
}

void PrintStable(hilog::Engine& engine) {
  hilog::StableModelsResult result = engine.SolveStable();
  if (!result.complete) std::puts("(enumeration incomplete: budget)");
  std::printf("%zu stable model(s)\n", result.models.size());
  for (size_t i = 0; i < result.models.size(); ++i) {
    std::printf("model %zu:", i + 1);
    for (hilog::TermId atom : result.models[i].true_atoms) {
      std::printf(" %s", engine.store().ToString(atom).c_str());
    }
    std::printf("\n");
  }
}

void PrintModular(hilog::Engine& engine) {
  hilog::ModularResult result = engine.SolveModular();
  if (!result.modularly_stratified) {
    std::printf("not modularly stratified: %s\n", result.reason.c_str());
    return;
  }
  std::printf("modularly stratified in %zu round(s)\n", result.rounds);
  for (size_t i = 0; i < result.settled_per_round.size(); ++i) {
    std::printf("  round %zu settles:", i + 1);
    for (hilog::TermId name : result.settled_per_round[i]) {
      std::printf(" %s", engine.store().ToString(name).c_str());
    }
    std::printf("\n");
  }
  std::printf("model (true atoms):\n");
  for (hilog::TermId atom : result.model.true_atoms().facts()) {
    std::printf("  %s\n", engine.store().ToString(atom).c_str());
  }
}

void PrintAggregates(hilog::Engine& engine) {
  hilog::AggregateEvalResult result = engine.SolveAggregates();
  if (!result.error.empty()) {
    std::printf("error: %s\n", result.error.c_str());
    return;
  }
  std::printf("%s after %zu round(s)\n",
              result.converged ? "converged" : "NOT converged",
              result.outer_rounds);
  for (hilog::TermId atom : result.facts.facts()) {
    std::printf("  %s\n", engine.store().ToString(atom).c_str());
  }
}

void RunQuery(hilog::Engine& engine, const std::string& text) {
  hilog::Engine::QueryAnswer answer = engine.Query(text);
  if (!answer.ok) {
    std::printf("error: %s\n", answer.error.c_str());
    return;
  }
  for (hilog::TermId atom : answer.answers) {
    std::printf("  %s\n", engine.store().ToString(atom).c_str());
  }
  switch (answer.ground_status) {
    case hilog::QueryStatus::kTrue:
      std::puts("=> true");
      break;
    case hilog::QueryStatus::kSettledFalse:
      std::puts("=> false (settled)");
      break;
    case hilog::QueryStatus::kUnsettled:
      if (answer.answers.empty()) std::puts("=> no answers");
      if (!answer.unsettled_negative_calls.empty()) {
        std::puts("warning: unsettled negative calls (program may not be "
                  "modularly stratified left-to-right):");
        for (hilog::TermId atom : answer.unsettled_negative_calls) {
          std::printf("  ~%s\n", engine.store().ToString(atom).c_str());
        }
      }
      break;
  }
}

// Connects to `addr` (host:port, or a Unix socket path when it contains
// '/'). Returns the fd or -1 with a message on stderr.
int ConnectServer(const std::string& addr) {
  if (addr.find('/') != std::string::npos) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.size() >= sizeof(sa.sun_path)) {
      std::fprintf(stderr, "unix socket path too long: %s\n", addr.c_str());
      return -1;
    }
    std::strncpy(sa.sun_path, addr.c_str(), sizeof(sa.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      std::fprintf(stderr, "cannot connect to %s: %s\n", addr.c_str(),
                   std::strerror(errno));
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--client wants host:port or a socket path, got %s\n",
                 addr.c_str());
    return -1;
  }
  const std::string host = addr.substr(0, colon);
  const int port = std::atoi(addr.c_str() + colon + 1);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1"
                                                               : host;
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1) {
    std::fprintf(stderr, "bad address %s\n", ip.c_str());
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", addr.c_str(),
                 std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one protocol line and prints the one response line. Returns false
// on a transport error.
bool ClientRoundTrip(int fd, std::string line, std::string* carry) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "send: %s\n", std::strerror(errno));
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  char chunk[4096];
  while (carry->find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "recv: %s\n", std::strerror(errno));
      return false;
    }
    if (n == 0) {
      std::fprintf(stderr, "server closed the connection\n");
      return false;
    }
    carry->append(chunk, static_cast<size_t>(n));
  }
  const size_t nl = carry->find('\n');
  std::printf("%s\n", carry->substr(0, nl).c_str());
  carry->erase(0, nl + 1);
  return true;
}

std::string WrapQueryLine(const std::string& query, uint64_t deadline_ms) {
  std::string line = "{\"op\":\"query\",\"q\":";
  line += hilog::service::JsonQuote(query);
  if (deadline_ms != 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  line += "}";
  return line;
}

// The --client REPL: raw '{...}' lines pass through, anything else becomes
// a query op. Returns the process exit code.
int RunClient(const std::string& addr, const std::string& batch_query,
              uint64_t deadline_ms) {
  const int fd = ConnectServer(addr);
  if (fd < 0) return 1;
  std::string carry;
  int exit_code = 0;
  if (!batch_query.empty()) {
    if (!ClientRoundTrip(fd, WrapQueryLine(batch_query, deadline_ms),
                         &carry)) {
      exit_code = 1;
    }
  } else {
    const bool tty = ::isatty(STDIN_FILENO) != 0;
    if (tty) std::puts("hilog client shell — :quit to exit");
    std::string line;
    while (true) {
      if (tty) {
        std::printf("hilog@%s> ", addr.c_str());
        std::fflush(stdout);
      }
      if (!std::getline(std::cin, line)) break;
      if (line.empty()) continue;
      if (line == ":quit" || line == ":q") break;
      const std::string wire =
          line[0] == '{' ? line : WrapQueryLine(line, deadline_ms);
      if (!ClientRoundTrip(fd, wire, &carry)) {
        exit_code = 1;
        break;
      }
    }
  }
  ::close(fd);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_stats = false;
  std::string stats_json_path;
  std::string trace_json_path;
  std::string batch_query;
  std::string program_path;
  std::string client_addr;
  uint64_t client_deadline_ms = 0;
  size_t eval_threads = 1;
  bool explain_plan = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(arg, "--stats-json") == 0) {
      stats_json_path = take_value("--stats-json");
    } else if (std::strcmp(arg, "--trace-json") == 0) {
      trace_json_path = take_value("--trace-json");
    } else if (std::strcmp(arg, "--query") == 0) {
      batch_query = take_value("--query");
    } else if (std::strcmp(arg, "--client") == 0) {
      client_addr = take_value("--client");
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      client_deadline_ms =
          std::strtoull(take_value("--deadline-ms"), nullptr, 10);
    } else if (std::strcmp(arg, "--eval-threads") == 0) {
      // Worker-pool concurrency for the SCC scheduler's component waves;
      // 1 (the default) keeps evaluation fully sequential. Answers are
      // byte-identical at every setting.
      eval_threads = std::strtoull(take_value("--eval-threads"), nullptr, 10);
    } else if (std::strcmp(arg, "--compile-rules") == 0) {
      const char* value = take_value("--compile-rules");
      if (std::strcmp(value, "on") == 0) {
        hilog::SetRuleCompilationEnabled(true);
      } else if (std::strcmp(value, "off") == 0) {
        hilog::SetRuleCompilationEnabled(false);
      } else {
        std::fprintf(stderr, "--compile-rules wants on|off, got %s\n", value);
        return 2;
      }
    } else if (std::strcmp(arg, "--explain-plan") == 0) {
      explain_plan = true;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    } else {
      program_path = arg;
    }
  }
  if (!client_addr.empty()) {
    return RunClient(client_addr, batch_query, client_deadline_ms);
  }

  const bool observing =
      want_stats || !stats_json_path.empty() || !trace_json_path.empty();
  const bool batch = observing && !program_path.empty();

  hilog::EngineOptions options;
  options.bottomup.eval_threads = eval_threads;
  if (!trace_json_path.empty()) options.trace_capacity = 1 << 16;
  hilog::Engine engine(options);

  auto emit_stats = [&]() -> bool {
    bool ok = true;
    if (want_stats) {
      std::fputs(engine.metrics().ToTable().c_str(), stdout);
    }
    if (!stats_json_path.empty()) {
      ok &= WriteTextFile(stats_json_path, engine.metrics().ToJson());
    }
    if (!trace_json_path.empty() && engine.trace() != nullptr) {
      ok &= WriteTextFile(trace_json_path, engine.trace()->ToChromeJson());
    }
    return ok;
  };

  if (!program_path.empty()) {
    std::ifstream file(program_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", program_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::string error = engine.Load(buffer.str());
    if (!error.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("loaded %zu rule(s) from %s\n", engine.program().size(),
                program_path.c_str());
  }

  if (explain_plan) {
    if (program_path.empty()) {
      std::fprintf(stderr, "--explain-plan needs a program file\n");
      return 2;
    }
    std::fputs(hilog::ExplainKernelPrograms(engine.store(), engine.program())
                   .c_str(),
               stdout);
    return 0;
  }

  if (batch) {
    PrintWfs(engine);
    if (!batch_query.empty()) RunQuery(engine, batch_query);
    return emit_stats() ? 0 : 1;
  }

  std::puts("hilog interactive shell — :help for commands");
  std::string line;
  while (std::printf("hilog> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == ':') {
      std::istringstream words(line);
      std::string command;
      words >> command;
      if (command == ":quit" || command == ":q") break;
      if (command == ":help") {
        PrintHelp();
      } else if (command == ":analyze") {
        PrintAnalysis(engine);
      } else if (command == ":wfs") {
        PrintWfs(engine);
      } else if (command == ":stable") {
        PrintStable(engine);
      } else if (command == ":modular") {
        PrintModular(engine);
      } else if (command == ":agg") {
        PrintAggregates(engine);
      } else if (command == ":query") {
        std::string rest;
        std::getline(words, rest);
        RunQuery(engine, rest);
      } else if (command == ":prove") {
        std::string rest;
        std::getline(words, rest);
        hilog::ResolutionResult r = engine.Prove(rest);
        if (!r.error.empty()) {
          std::printf("error: %s\n", r.error.c_str());
        } else {
          for (hilog::TermId s : r.solutions) {
            std::printf("  %s\n", engine.store().ToString(s).c_str());
          }
          std::printf("%zu solution(s)%s in %zu steps\n", r.solutions.size(),
                      r.exhausted ? "" : " (search cut off)", r.steps);
        }
      } else if (command == ":table") {
        std::string rest;
        std::getline(words, rest);
        hilog::TabledResult r = engine.ProveTabled(rest);
        if (!r.error.empty()) {
          std::printf("error: %s\n", r.error.c_str());
        } else {
          for (hilog::TermId s : r.answers) {
            std::printf("  %s\n", engine.store().ToString(s).c_str());
          }
          std::printf("%zu answer(s)%s, %zu tables, %zu steps\n",
                      r.answers.size(), r.complete ? "" : " (incomplete)",
                      r.tables, r.steps);
        }
      } else if (command == ":stratified") {
        hilog::StratifiedEvalResult r = engine.SolveStratified();
        if (!r.ok) {
          std::printf("error: %s\n", r.error.c_str());
        } else {
          std::printf("%zu strata, %zu true atoms\n", r.strata,
                      r.facts.size());
          for (hilog::TermId atom : r.facts.facts()) {
            std::printf("  %s\n", engine.store().ToString(atom).c_str());
          }
        }
      } else if (command == ":domind") {
        hilog::DomainIndependenceResult r = engine.CheckDomainIndependence();
        if (!r.conclusive) {
          std::puts("inconclusive: the bounded instantiation was truncated "
                    "(too many rule variables for the universe bound)");
        } else if (r.independent) {
          std::puts("no domain-dependence found (evidence, not proof — "
                    "the property is undecidable)");
        } else {
          std::printf("NOT domain independent; witness: %s\n",
                      engine.store().ToString(r.witness).c_str());
        }
      } else if (command == ":lint") {
        auto findings = hilog::LintProgram(engine.store(), engine.program());
        if (findings.empty()) {
          std::puts("no findings");
        } else {
          std::fputs(hilog::RenderFindings(engine.store(), engine.program(),
                                           findings)
                         .c_str(),
                     stdout);
        }
      } else if (command == ":stats") {
        std::fputs(engine.metrics().ToTable().c_str(), stdout);
      } else if (command == ":list") {
        std::fputs(
            hilog::ProgramToString(engine.store(), engine.program()).c_str(),
            stdout);
      } else if (command == ":clear") {
        engine.Load("");
        std::puts("cleared");
      } else {
        std::printf("unknown command %s\n", command.c_str());
        PrintHelp();
      }
      continue;
    }
    std::string error = engine.LoadMore(line);
    if (!error.empty()) std::printf("%s\n", error.c_str());
  }
  return emit_stats() ? 0 : 1;
}
