// hilog_server — the concurrent query service over a line protocol.
//
//   ./build/examples/hilog_server [options]
//
// Options:
//   --port <n>            TCP port on 127.0.0.1 (default 7601; 0 picks an
//                         ephemeral port and prints it)
//   --unix <path>         also listen on a Unix-domain socket
//   --threads <n>         executor worker threads (default 4)
//   --queue <n>           bounded submission queue capacity (default 64)
//   --default-deadline-ms <n>  deadline applied to queries that carry none
//   --preload <file.hl>   publish this program before accepting clients
//   --no-wfs              skip the WFS solve when publishing snapshots
//   --trace <n>           per-worker trace ring capacity (default off)
//   --slow-query-ms <n>   log a structured JSON line to stderr for any
//                         request slower than n ms end to end (default off)
//   --sample-interval-ms <n>  queue-depth/inflight gauge sampler period
//                         (default 100; 0 disables)
//   --warm-wfs            pre-solve WFS in each worker on epoch change
//                         (warms the scheduler cache; puts component
//                         spans in the triggering request's trace)
//   --compile-rules on|off  rule compilation to join-kernel bytecode
//                         (default on; off runs the legacy per-round
//                         loops — answers are byte-identical either way)
//
// Protocol: one JSON object per line in, one per line out — see
// docs/service.md. Try it with:
//   ./build/examples/hilog_cli --client 127.0.0.1:7601

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/service/executor.h"
#include "src/service/server.h"
#include "src/service/snapshot.h"

namespace {

hilog::service::LineServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  hilog::service::ServerOptions server_options;
  server_options.port = 7601;
  hilog::service::ExecutorOptions executor_options;
  std::string preload_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--port") == 0) {
      server_options.port = std::atoi(take_value("--port"));
    } else if (std::strcmp(arg, "--unix") == 0) {
      server_options.unix_path = take_value("--unix");
    } else if (std::strcmp(arg, "--threads") == 0) {
      executor_options.threads =
          static_cast<size_t>(std::atoi(take_value("--threads")));
    } else if (std::strcmp(arg, "--queue") == 0) {
      executor_options.queue_capacity =
          static_cast<size_t>(std::atoi(take_value("--queue")));
    } else if (std::strcmp(arg, "--default-deadline-ms") == 0) {
      executor_options.default_deadline_ms =
          std::strtoull(take_value("--default-deadline-ms"), nullptr, 10);
    } else if (std::strcmp(arg, "--preload") == 0) {
      preload_path = take_value("--preload");
    } else if (std::strcmp(arg, "--no-wfs") == 0) {
      server_options.solve_wfs = false;
    } else if (std::strcmp(arg, "--trace") == 0) {
      executor_options.engine.trace_capacity =
          static_cast<size_t>(std::atoi(take_value("--trace")));
    } else if (std::strcmp(arg, "--slow-query-ms") == 0) {
      executor_options.slow_query_ns =
          std::strtoull(take_value("--slow-query-ms"), nullptr, 10) *
          1'000'000ull;
    } else if (std::strcmp(arg, "--sample-interval-ms") == 0) {
      server_options.sample_interval_ms =
          std::strtoull(take_value("--sample-interval-ms"), nullptr, 10);
    } else if (std::strcmp(arg, "--warm-wfs") == 0) {
      executor_options.warm_wfs = true;
    } else if (std::strcmp(arg, "--compile-rules") == 0) {
      const char* value = take_value("--compile-rules");
      if (std::strcmp(value, "on") == 0) {
        hilog::SetRuleCompilationEnabled(true);
      } else if (std::strcmp(value, "off") == 0) {
        hilog::SetRuleCompilationEnabled(false);
      } else {
        std::fprintf(stderr, "--compile-rules wants on|off, got %s\n", value);
        return 2;
      }
    } else if (std::strcmp(arg, "--eval-threads") == 0) {
      // Worker-pool concurrency inside one evaluation (the scheduler's
      // component waves) — orthogonal to --threads, which is the number
      // of concurrent requests. Default 1: sequential evaluation.
      executor_options.engine.bottomup.eval_threads =
          static_cast<size_t>(std::atoi(take_value("--eval-threads")));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    }
  }

  auto snapshots = std::make_shared<hilog::service::SnapshotStore>(
      executor_options.engine);
  if (!preload_path.empty()) {
    std::ifstream file(preload_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", preload_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::string error = snapshots->Publish(buffer.str(), /*append=*/false,
                                           server_options.solve_wfs);
    if (!error.empty()) {
      std::fprintf(stderr, "preload failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("preloaded %zu rule(s) from %s (epoch %llu)\n",
                snapshots->Current()->rules(), preload_path.c_str(),
                static_cast<unsigned long long>(snapshots->epoch()));
  }

  auto executor = std::make_shared<hilog::service::QueryExecutor>(
      snapshots, executor_options);
  hilog::service::LineServer server(snapshots, executor, server_options);

  std::string error = server.Start();
  if (!error.empty()) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (server.port() >= 0) {
    std::printf("listening on 127.0.0.1:%d", server.port());
  }
  if (!server_options.unix_path.empty()) {
    std::printf("%s%s", server.port() >= 0 ? " and " : "listening on ",
                server_options.unix_path.c_str());
  }
  std::printf(" (%zu worker(s), queue %zu)\n", executor->threads(),
              executor->options().queue_capacity);
  std::fflush(stdout);

  server.Wait();
  std::puts("draining...");
  server.Stop();
  executor->Shutdown(/*drain=*/true);
  g_server = nullptr;

  const hilog::service::ServiceStats stats = executor->stats();
  std::printf("served %llu quer%s (%llu ok, %llu timeout, %llu shed)\n",
              static_cast<unsigned long long>(stats.completed),
              stats.completed == 1 ? "y" : "ies",
              static_cast<unsigned long long>(stats.ok),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.shed));
  return 0;
}
