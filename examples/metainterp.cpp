// HiLog as a metaprogramming substrate: maplist (Example 2.2), the call
// metapredicate idiom, and the universal-relation encoding of Section 2 —
// the library's term machinery used directly, without the Engine facade.
//
//   ./build/examples/metainterp

#include <cstdio>

#include "src/eval/bottomup.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/transform/universal.h"

int main() {
  hilog::TermStore store;

  // --- Example 2.2: maplist, evaluated bottom-up. ---------------------
  auto parsed = hilog::ParseProgram(store, R"(
    % Example 2.2's maplist, made strongly range restricted by guarding
    % the base case with the fn relation (bottom-up evaluation needs
    % ground heads; the paper's open fact maplist(F)([],[]) quantifies
    % over every term F).
    fn(succ). fn(square).
    maplist(F)([],[]) :- fn(F).
    maplist(F)([X|R],[Y|Z]) :- F(X,Y), maplist(F)(R,Z).
    succ(1,2). succ(2,3). succ(3,4).
    square(1,1). square(2,4). square(3,9).
    % Drive the evaluation with two concrete calls.
    demo1(Out) :- maplist(succ)([1,2,3], Out).
    demo2(Out) :- maplist(square)([1,2,3], Out).
  )");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  // Budgeted least model: maplist over unbounded lists is infinite, so
  // the budget matters; the demo facts appear well before the cap.
  hilog::BottomUpOptions options;
  options.max_facts = 2000;
  hilog::BottomUpResult result =
      hilog::LeastModelOfPositiveProjection(store, *parsed, options);
  hilog::TermId demo1 = store.MakeSymbol("demo1");
  hilog::TermId demo2 = store.MakeSymbol("demo2");
  for (hilog::TermId fact : result.facts.facts()) {
    hilog::TermId name = store.PredName(fact);
    if (name == demo1 || name == demo2) {
      std::printf("%s\n", store.ToString(fact).c_str());
    }
  }

  // --- Section 2: the universal-relation ("call"/apply) encoding. -----
  hilog::UniversalTransform universal(store);
  const char* samples[] = {
      "p(a,X)(Y)(b,f(c)(d))",  // The paper's worked example.
      "maplist(F)([X|R],[Y|Z])",
      "tc(tc(e))(1,4)",
  };
  std::printf("\nuniversal-relation encodings (Section 2):\n");
  for (const char* text : samples) {
    hilog::TermId t = *hilog::ParseTerm(store, text);
    hilog::TermId encoded = universal.EncodeAtom(t);
    std::printf("  %-28s =>  %s\n", text, store.ToString(encoded).c_str());
    // And back.
    auto decoded = universal.DecodeAtom(encoded);
    if (!decoded.has_value() || *decoded != t) {
      std::fprintf(stderr, "round-trip FAILED for %s\n", text);
      return 1;
    }
  }
  std::printf("  (all round-trips verified)\n");
  return 0;
}
