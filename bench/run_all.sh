#!/usr/bin/env bash
# Runs every bench_* binary with JSON output and aggregates the results
# into BENCH_core.json (schema "hilog-bench-core-v1": one entry per
# binary, each in the per-binary "hilog-bench-v1" schema emitted by
# bench/bench_main.h).
#
#   bench/run_all.sh [build-dir] [output-json] [extra benchmark args...]
#
# Defaults: build-dir=build, output-json=BENCH_core.json. A quick filter
# keeps the default run to the small/medium workload sizes so the
# baseline regenerates in seconds; pass --benchmark_filter=. to override.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_core.json}"
shift $(( $# > 2 ? 2 : $# )) || true

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

# Keep the committed baseline cheap: only workload sizes up to 3 digits,
# plus the IndexedJoin/ColumnJoin cases (deliberately 10k-100k facts —
# they exist to exercise the argument index and the columnar batch-join
# path at scale and stay fast *because* of them). The 1M ColumnJoin
# points stay out of the committed baseline.
default_filter='--benchmark_filter=(.*/[0-9]{1,3}$)|(IndexedJoin)|(ColumnJoin.*/10{4,5}$)'
min_time='--benchmark_min_time=0.02'

bins=("$build_dir"/bench/bench_*)
if [ ! -e "${bins[0]}" ]; then
  echo "no bench binaries under $build_dir/bench — build first" >&2
  exit 1
fi

parts=()
for bin in "${bins[@]}"; do
  name="$(basename "$bin")"
  echo "== $name" >&2
  "$bin" "$default_filter" "$min_time" "$@" \
      --json "$tmp_dir/$name.json" >/dev/null
  parts+=("$tmp_dir/$name.json")
done

{
  printf '{"schema":"hilog-bench-core-v1","binaries":['
  first=1
  for part in "${parts[@]}"; do
    [ "$first" = 1 ] || printf ','
    first=0
    cat "$part" | tr -d '\n'
  done
  printf ']}\n'
} > "$out_json"

echo "wrote $out_json (${#parts[@]} binaries)" >&2
