// E17/E18: cost of the Figure 1 decision procedure (modular
// stratification for HiLog) as game size, game count, and component
// structure grow; plus the normal-program checker (Definition 6.4) for
// comparison.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/analysis/modular.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

void BM_Figure1_GamePositions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::HiLogGameProgram(1, n));
  for (auto _ : state) {
    ModularResult r = CheckModularHiLog(store, *parsed, ModularOptions());
    benchmark::DoNotOptimize(r.modularly_stratified);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Figure1_GamePositions)->Range(8, 512);

void BM_Figure1_GameCount(benchmark::State& state) {
  // Each extra game adds one component round-trip through reduction.
  const int games = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::HiLogGameProgram(games, 8));
  for (auto _ : state) {
    ModularResult r = CheckModularHiLog(store, *parsed, ModularOptions());
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(state.iterations() * games);
}
BENCHMARK(BM_Figure1_GameCount)->Range(2, 64);

void BM_Figure1_RejectsCyclic(benchmark::State& state) {
  // Rejection cost on a cyclic game (found at the local-stratification
  // check of the winning component).
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y).\n"
      "game(mv).\n" +
      bench::CycleFacts("mv", n);
  auto parsed = ParseProgram(store, text);
  for (auto _ : state) {
    ModularResult r = CheckModularHiLog(store, *parsed, ModularOptions());
    benchmark::DoNotOptimize(r.modularly_stratified);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Figure1_RejectsCyclic)->Range(8, 512);

void BM_NormalChecker_Layered(benchmark::State& state) {
  // Definition 6.4 on a wide stratified program: many singleton
  // components processed in topological order.
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    ModularResult r = CheckModularNormal(store, *parsed, ModularOptions());
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_NormalChecker_Layered)->Range(4, 128);

void BM_HiLogChecker_Layered(benchmark::State& state) {
  // Figure 1 on the same layered program (Lemma 6.2 agreement, cost
  // side): Figure 1 settles whole sink *sets* per round, so it needs
  // fewer rounds than components.
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    ModularResult r = CheckModularHiLog(store, *parsed, ModularOptions());
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_HiLogChecker_Layered)->Range(4, 128);

void BM_HiLogReduction(benchmark::State& state) {
  // The Definition 6.5 reduction in isolation: join a settled relation of
  // size n through the game rule.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(
      store, "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y).");
  SettledModel settled;
  TermId game = store.MakeSymbol("game");
  settled.SettleName(game);
  TermId mv = store.MakeSymbol("mv");
  settled.AddTrue(store, store.MakeApply(game, {mv}));
  settled.SettleName(mv);
  for (int i = 0; i < n; ++i) {
    settled.AddTrue(
        store, store.MakeApply(mv, {store.MakeSymbol("n" + std::to_string(i)),
                                    store.MakeSymbol(
                                        "n" + std::to_string(i + 1))}));
  }
  for (auto _ : state) {
    ReductionResult r = HiLogReduce(store, parsed->rules, settled, 1000000);
    benchmark::DoNotOptimize(r.rules.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HiLogReduction)->Range(8, 2048);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_modular")
