// Columnar batch-join benchmarks: the workloads whose joins run through
// FactBase's key columns (hash built once per stored relation, bindings
// streamed through) rather than per-probe bucket filtering. Sizes run
// 10k-1M facts; the committed baseline keeps the 10k-100k points.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/core/engine.h"
#include "src/eval/bottomup.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

void BM_ColumnJoin_HopChain(benchmark::State& state) {
  // Two-hop join over a chain EDB: every e(Y,Z) probe carries a bound
  // first argument, so the whole inner loop is columnar hash lookups.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(
      store, "hop(X,Z) :- e(X,Y), e(Y,Z).\n" + bench::ChainFacts("e", n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnJoin_HopChain)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_ColumnJoin_ReachDelta(benchmark::State& state) {
  // Semi-naive reachability: each round's delta streams through the e
  // column, so the probe side grows while the stored side's hash is
  // reused round over round (extended only by the watermark catch-up).
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(
      store, "r(n0).\nr(Y) :- r(X), e(X,Y).\n" + bench::ChainFacts("e", n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnJoin_ReachDelta)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_ColumnJoin_MagicReach(benchmark::State& state) {
  // Magic query halfway down the win/move graph: the rewritten program's
  // m(X,Y) probes (X bound by the magic seed chain) all route through
  // the columnar hash of the variant fact store's ground base.
  const int n = static_cast<int>(state.range(0));
  std::string query = "w(n" + std::to_string(n / 2) + ")";
  Engine engine;
  engine.Load(bench::WinMoveProgram(n));
  for (auto _ : state) {
    Engine::QueryAnswer answer = engine.Query(query);
    benchmark::DoNotOptimize(answer.facts_derived);
  }
  state.SetItemsProcessed(state.iterations() * n / 2);
}
BENCHMARK(BM_ColumnJoin_MagicReach)->Arg(10000)->Arg(100000);

void BM_ColumnJoin_UniversalCall(benchmark::State& state) {
  // The universal call/u_i encoding: every joining argument sits one
  // level down inside call(u3(e,X,Y)), so probes discriminate by the
  // sub-argument columns (top-level shape + nested exact fingerprints).
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "hop(X,Z) :- call(u3(e,X,Y)), call(u3(e,Y,Z)).\n";
  for (int i = 0; i < n; ++i) {
    text += "call(u3(e,n" + std::to_string(i) + ",n" +
            std::to_string(i + 1) + ")).\n";
  }
  auto parsed = ParseProgram(store, text);
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColumnJoin_UniversalCall)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_column")
