// E23: the parts-explosion aggregation (Section 6) — scaling with
// hierarchy depth and fanout; outer rounds track the hierarchy depth (the
// modularly-stratified-aggregation convergence argument, measured).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/eval/aggregate.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

void BM_PartsExplosion_Depth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::PartsProgram(depth, 2));
  for (auto _ : state) {
    AggregateEvalResult r =
        EvaluateWithAggregates(store, *parsed, AggregateEvalOptions());
    benchmark::DoNotOptimize(r.facts.size());
  }
  TermStore fresh;
  auto reparsed = ParseProgram(fresh, bench::PartsProgram(depth, 2));
  AggregateEvalResult r =
      EvaluateWithAggregates(fresh, *reparsed, AggregateEvalOptions());
  state.counters["outer_rounds"] = static_cast<double>(r.outer_rounds);
  state.counters["facts"] = static_cast<double>(r.facts.size());
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_PartsExplosion_Depth)->DenseRange(2, 10, 2);

void BM_PartsExplosion_Fanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::PartsProgram(4, fanout));
  for (auto _ : state) {
    AggregateEvalResult r =
        EvaluateWithAggregates(store, *parsed, AggregateEvalOptions());
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_PartsExplosion_Fanout)->Range(1, 8);

void BM_PartsExplosion_TwoMachines(benchmark::State& state) {
  // The HiLog dispatch through assoc: two machines with disjoint
  // hierarchies sharing the three rules.
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = bench::PartsProgram(depth, 2);
  text += "assoc(m2, parts2).\n";
  for (int d = 0; d < depth; ++d) {
    text += "parts2(j" + std::to_string(d) + ", j" + std::to_string(d + 1) +
            ", 3).\n";
  }
  auto parsed = ParseProgram(store, text);
  for (auto _ : state) {
    AggregateEvalResult r =
        EvaluateWithAggregates(store, *parsed, AggregateEvalOptions());
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_PartsExplosion_TwoMachines)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_parts")
