// E11: the static analyses — range-restriction checks (Definitions 4.1,
// 5.5, 5.6), Datahilog, stratification, floundering — as program size
// grows. These run on every Engine::Analyze call, so their cost matters.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/analysis/range_restriction.h"
#include "src/analysis/stratification.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

void BM_RangeRestrictionCheck(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsRangeRestricted(store, *parsed));
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_RangeRestrictionCheck)->Range(8, 512);

void BM_StrongRangeRestrictionCheck(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStronglyRangeRestricted(store, *parsed));
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_StrongRangeRestrictionCheck)->Range(8, 512);

void BM_OrderingSearchWorstCase(benchmark::State& state) {
  // Condition 3's ordering search on one rule with a long dependency
  // chain of name variables: greedy selection is quadratic in body size.
  const int k = static_cast<int>(state.range(0));
  TermStore store;
  // h(a) :- p(X1), X1(X2), X2(X3), ..., X{k-1}(Xk).
  std::string text = "h(a) :- p(X1)";
  for (int i = 1; i < k; ++i) {
    text += ", X" + std::to_string(i) + "(X" + std::to_string(i + 1) + ")";
  }
  text += ".";
  auto parsed = ParseProgram(store, text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsStronglyRangeRestrictedRule(store, parsed->rules[0]));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_OrderingSearchWorstCase)->Range(4, 256);

void BM_StratificationCheck(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    std::unordered_map<TermId, int> levels;
    benchmark::DoNotOptimize(IsStratified(store, *parsed, &levels));
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_StratificationCheck)->Range(8, 512);

void BM_LocalStratificationCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::GroundWinChain(n));
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLocallyStratified(ground));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LocalStratificationCheck)->Range(16, 4096);

void BM_FlounderingCheck(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProgramFlounders(store, *parsed));
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_FlounderingCheck)->Range(8, 512);

void BM_DatahilogCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::WinMoveProgram(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsDatahilog(store, *parsed));
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_DatahilogCheck)->Range(16, 1024);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_analysis")
