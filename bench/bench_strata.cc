// Ablation: three ways to evaluate a stratified program — the stratified
// (perfect-model) evaluator, the alternating-fixpoint WFS, and the
// weakly-perfect construction — plus the weakly-perfect construction's
// layer-at-a-time cost on deep ground programs.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/analysis/weak_stratification.h"
#include "src/eval/stratified.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"

namespace hilog {
namespace {

void BM_StratifiedEvaluator_Layered(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  for (auto _ : state) {
    StratifiedEvalResult r =
        EvaluateStratified(store, *parsed, BottomUpOptions());
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_StratifiedEvaluator_Layered)->Range(8, 512);

void BM_WfsOnSameLayeredProgram(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(ground.program);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WfsOnSameLayeredProgram)->Range(8, 512);

void BM_WeaklyPerfect_Layered(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  RelevanceGroundingResult ground =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WeakStratificationResult r = ComputeWeaklyPerfectModel(ground.program);
    benchmark::DoNotOptimize(r.weakly_stratified);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WeaklyPerfect_Layered)->Range(8, 256);

void BM_WeaklyPerfect_DeepChain(benchmark::State& state) {
  // The worst case for layer-at-a-time evaluation: a win/move chain where
  // each layer settles a single atom, forcing n rounds of SCC + reduce.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::GroundWinChain(n));
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  for (auto _ : state) {
    WeakStratificationResult r = ComputeWeaklyPerfectModel(ground);
    benchmark::DoNotOptimize(r.weakly_stratified);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WeaklyPerfect_DeepChain)->Range(8, 256);

void BM_StratifiedParallel_Wide(benchmark::State& state) {
  // The parallel stratified evaluator on a wide three-layer program:
  // each wave is `width` independent predicate groups fanned across the
  // worker pool. Axis 0 is the width, axis 1 the eval-thread count.
  const int width = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TermStore store;
  auto parsed = ParseProgram(store, bench::LayeredProgram(width));
  BottomUpOptions options;
  options.eval_threads = static_cast<size_t>(threads);
  for (auto _ : state) {
    StratifiedEvalResult r = EvaluateStratified(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_StratifiedParallel_Wide)->ArgsProduct({{32, 128}, {1, 2, 4}});

void BM_WfsOnDeepChainReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::GroundWinChain(n));
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WfsOnDeepChainReference)->Range(8, 256);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_strata")
