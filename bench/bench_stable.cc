// E5/E6: stable-model machinery — the Gelfond-Lifschitz check, the
// W_P-fixpoint characterization (Definition 3.6), and enumeration cost as
// the number of undefined atoms grows (2^k candidates).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/stable.h"

namespace hilog {
namespace {

GroundProgram MakeGround(TermStore& store, const std::string& text) {
  auto parsed = ParseProgram(store, text);
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  return ground;
}

void BM_StableEnumeration_Loops(benchmark::State& state) {
  // k independent p/~q loops: WFS leaves 2k atoms undefined, enumeration
  // checks 2^{2k} candidates and finds 2^k stable models.
  const int loops = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::LoopProgram(loops));
  StableOptions options;
  options.max_models = 1u << 20;
  options.max_branch_atoms = 2 * static_cast<size_t>(loops);
  for (auto _ : state) {
    StableModelsResult r = EnumerateStableModels(ground, options);
    benchmark::DoNotOptimize(r.models.size());
  }
  state.SetItemsProcessed(state.iterations() * (1ll << (2 * loops)));
}
BENCHMARK(BM_StableEnumeration_Loops)->DenseRange(1, 8);

void BM_StableEnumeration_WfsPrunesEverything(benchmark::State& state) {
  // A two-valued-WFS program of size n: enumeration collapses to a single
  // candidate regardless of n (the WFS fixes every atom first).
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::GroundWinChain(n));
  for (auto _ : state) {
    StableModelsResult r = EnumerateStableModels(ground, StableOptions());
    benchmark::DoNotOptimize(r.models.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StableEnumeration_WfsPrunesEverything)->Range(16, 1024);

void BM_StableEnumeration_Layered(benchmark::State& state) {
  // A stratified layered-negation stack: the internal SCC-scheduled WFS
  // is total, so enumeration emits the single model with zero branching
  // regardless of depth.
  const int layers = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed =
      ParseProgram(store, bench::LayeredNegationProgram(layers, /*width=*/8));
  RelevanceGroundingResult g =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    StableModelsResult r = EnumerateStableModels(g.program, StableOptions());
    benchmark::DoNotOptimize(r.models.size());
  }
  state.SetItemsProcessed(state.iterations() * layers * 8);
}
BENCHMARK(BM_StableEnumeration_Layered)->Range(2, 32);

void BM_StableEnumeration_MultiChains(benchmark::State& state) {
  // Independent win chains: WFS (via the scheduler) fixes every atom
  // per component, so enumeration stays a single candidate as the
  // number of components grows.
  const int chains = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::MultiWinChains(chains, /*length=*/16));
  for (auto _ : state) {
    StableModelsResult r = EnumerateStableModels(ground, StableOptions());
    benchmark::DoNotOptimize(r.models.size());
  }
  state.SetItemsProcessed(state.iterations() * chains * 16);
}
BENCHMARK(BM_StableEnumeration_MultiChains)->Range(4, 32);

void BM_GelfondLifschitzCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::GroundWinChain(n));
  // The unique stable model: w(n_i) true iff (n - i) is odd.
  std::vector<TermId> trues;
  for (int i = 0; i < n; ++i) {
    if ((n - i) % 2 == 1) {
      trues.push_back(*ParseTerm(store, "w(n" + std::to_string(i) + ")"));
    }
    trues.push_back(*ParseTerm(store, "m(n" + std::to_string(i) + ",n" +
                                          std::to_string(i + 1) + ")"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStableModel(ground, trues));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GelfondLifschitzCheck)->Range(16, 4096);

void BM_WFixpointCheck(benchmark::State& state) {
  // Definition 3.6's characterization: same input as the GL check, via
  // one T_P application plus one greatest-unfounded-set computation.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::GroundWinChain(n));
  std::vector<TermId> trues;
  for (int i = 0; i < n; ++i) {
    if ((n - i) % 2 == 1) {
      trues.push_back(*ParseTerm(store, "w(n" + std::to_string(i) + ")"));
    }
    trues.push_back(*ParseTerm(store, "m(n" + std::to_string(i) + ",n" +
                                          std::to_string(i + 1) + ")"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTwoValuedFixpointOfW(ground, trues));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WFixpointCheck)->Range(16, 1024);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_stable")
