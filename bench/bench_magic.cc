// E24/E25/E26: the paper's central performance claim (Sections 1, 6.1) —
// the magic-sets method "allows the efficient evaluation of queries over
// a large class of HiLog programs". We compare query-directed magic
// evaluation against computing the full well-founded model, on game
// programs where the query touches only a suffix of the move graph.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/core/engine.h"

namespace hilog {
namespace {

// Full WFS of the whole program (relevance grounding + alternating
// fixpoint), the baseline a query would use without magic sets.
void BM_FullWfs_GameChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Engine engine;
  engine.Load(bench::WinMoveProgram(n));
  for (auto _ : state) {
    Engine::WfsAnswer answer = engine.SolveWellFounded();
    benchmark::DoNotOptimize(answer.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullWfs_GameChain)->Range(16, 4096);

// Magic query near the *end* of the chain: only O(1) of the graph is
// relevant — query-directed evaluation should be ~flat in n.
void BM_MagicQuery_GameChainTail(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string query = "w(n" + std::to_string(n - 2) + ")";
  Engine engine;
  engine.Load(bench::WinMoveProgram(n));
  for (auto _ : state) {
    Engine::QueryAnswer answer = engine.Query(query);
    benchmark::DoNotOptimize(answer.facts_derived);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MagicQuery_GameChainTail)->Range(16, 4096);

// Magic query at the head of the chain: everything is relevant; magic
// pays its bookkeeping overhead (the honest worst case).
void BM_MagicQuery_GameChainHead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Engine engine;
  engine.Load(bench::WinMoveProgram(n));
  for (auto _ : state) {
    Engine::QueryAnswer answer = engine.Query("w(n0)");
    benchmark::DoNotOptimize(answer.facts_derived);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MagicQuery_GameChainHead)->Range(16, 512);

// HiLog flavor: many games loaded, query about one — magic must not
// explore the others.
void BM_MagicQuery_OneOfManyGames(benchmark::State& state) {
  const int games = static_cast<int>(state.range(0));
  Engine engine;
  engine.Load(bench::HiLogGameProgram(games, 16));
  for (auto _ : state) {
    Engine::QueryAnswer answer = engine.Query("winning(mv0)(n0)");
    benchmark::DoNotOptimize(answer.facts_derived);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MagicQuery_OneOfManyGames)->Range(2, 64);

void BM_FullWfs_ManyGames(benchmark::State& state) {
  const int games = static_cast<int>(state.range(0));
  Engine engine;
  engine.Load(bench::HiLogGameProgram(games, 16));
  for (auto _ : state) {
    Engine::WfsAnswer answer = engine.SolveWellFounded();
    benchmark::DoNotOptimize(answer.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * games);
}
BENCHMARK(BM_FullWfs_ManyGames)->Range(2, 64);

// The rewriting itself (Example 6.6): cost per program rule.
void BM_MagicRewrite(benchmark::State& state) {
  const int games = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::HiLogGameProgram(games, 4));
  TermId query = *ParseTerm(store, "winning(mv0)(n0)");
  MagicRewriteOptions options;
  options.edb_names = FactOnlyPredicates(store, *parsed);
  for (auto _ : state) {
    MagicProgram magic = MagicRewrite(store, *parsed, query, options);
    benchmark::DoNotOptimize(magic.rules.size());
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_MagicRewrite)->Range(2, 64);

void BM_IndexedJoin_MagicMidChain(benchmark::State& state) {
  // Magic query halfway down a large win/move graph: the evaluator walks
  // n/2 positions, each probing m(X,Y) with X bound. The argument index
  // turns every probe from an O(n) bucket scan into an O(out-degree)
  // lookup, and the indexed EDB preload replaces the per-name bucket
  // append. 10k-100k edges.
  const int n = static_cast<int>(state.range(0));
  std::string query = "w(n" + std::to_string(n / 2) + ")";
  Engine engine;
  engine.Load(bench::WinMoveProgram(n));
  for (auto _ : state) {
    Engine::QueryAnswer answer = engine.Query(query);
    benchmark::DoNotOptimize(answer.facts_derived);
  }
  state.SetItemsProcessed(state.iterations() * n / 2);
}
BENCHMARK(BM_IndexedJoin_MagicMidChain)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_magic")
