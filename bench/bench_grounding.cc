// E7/E27 + DESIGN.md section 4.3 ablation: the two grounders — exhaustive
// bounded-Herbrand instantiation (faithful to Section 4's definitions)
// versus relevance grounding (exact for strongly range-restricted
// programs) — and Lemma 6.3's Datahilog bound in practice.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/analysis/range_restriction.h"
#include "src/ground/grounder.h"
#include "src/ground/herbrand.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"

namespace hilog {
namespace {

void BM_RelevanceGrounding_Game(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::WinMoveProgram(n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    RelevanceGroundingResult r = GroundWithRelevance(store, *parsed, options);
    benchmark::DoNotOptimize(r.program.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelevanceGrounding_Game)->Range(16, 4096);

void BM_HerbrandUniverse_Enumeration(benchmark::State& state) {
  // Universe enumeration cost vs number of symbols (arity set {1,2},
  // depth 1): |U| = s + s^2 + s^3.
  const int symbols = static_cast<int>(state.range(0));
  TermStore store;
  std::vector<TermId> syms;
  for (int i = 0; i < symbols; ++i) {
    syms.push_back(store.MakeSymbol("s" + std::to_string(i)));
  }
  std::vector<size_t> arities = {1, 2};
  UniverseBound bound;
  bound.max_depth = 1;
  bound.max_terms = 100000000;
  for (auto _ : state) {
    Universe u = EnumerateHiLogUniverse(store, syms, arities, bound);
    benchmark::DoNotOptimize(u.terms.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          (symbols + symbols * symbols +
                           static_cast<int64_t>(symbols) * symbols * symbols));
}
BENCHMARK(BM_HerbrandUniverse_Enumeration)->Range(2, 32);

void BM_ExhaustiveInstantiation_Game(benchmark::State& state) {
  // Exhaustive depth-0 instantiation of the win/move rule: |U|^2
  // instances versus the ~2n the relevance grounder produces.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::WinMoveProgram(n));
  Universe u = ProgramHiLogUniverse(store, *parsed,
                                    UniverseBound{0, 1000000});
  for (auto _ : state) {
    InstantiationResult r =
        InstantiateOverUniverse(store, *parsed, u.terms, 100000000);
    benchmark::DoNotOptimize(r.program.size());
  }
  state.SetItemsProcessed(state.iterations() * u.terms.size() *
                          u.terms.size());
}
BENCHMARK(BM_ExhaustiveInstantiation_Game)->Range(8, 128);

void BM_Lemma63_DatahilogEnvelope(benchmark::State& state) {
  // Lemma 6.3: the non-false atoms of a strongly range-restricted
  // Datahilog program lie in the finite set T; the envelope the
  // relevance grounder computes is far smaller than |T| = sum c^{n+1}.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "winning(M,X) :- game(M), M(X,Y), ~winning(M,Y).\n"
      "game(mv).\n" +
      bench::ChainFacts("mv", n);
  auto parsed = ParseProgram(store, text);
  size_t bound = DatahilogAtomBound(store, *parsed);
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    RelevanceGroundingResult r = GroundWithRelevance(store, *parsed, options);
    benchmark::DoNotOptimize(r.envelope_size);
  }
  state.counters["datahilog_bound_T"] = static_cast<double>(bound);
  TermStore fresh;
  auto reparsed = ParseProgram(fresh, text);
  RelevanceGroundingResult r =
      GroundWithRelevance(fresh, *reparsed, options);
  state.counters["envelope"] = static_cast<double>(r.envelope_size);
}
BENCHMARK(BM_Lemma63_DatahilogEnvelope)->Range(8, 256);

void BM_GroundThenSolve_EndToEnd(benchmark::State& state) {
  // Parse -> ground -> WFS end to end (the full pipeline cost).
  const int n = static_cast<int>(state.range(0));
  std::string text = bench::WinMoveProgram(n);
  for (auto _ : state) {
    TermStore store;
    auto parsed = ParseProgram(store, text);
    BottomUpOptions options;
    options.max_facts = 10000000;
    RelevanceGroundingResult g = GroundWithRelevance(store, *parsed, options);
    WfsResult wfs = ComputeWfsAlternating(g.program);
    benchmark::DoNotOptimize(wfs.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroundThenSolve_EndToEnd)->Range(16, 2048);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_grounding")
