// Kernel-executor benchmarks: the compiled join-kernel path against the
// legacy interpreted loops on the same fixpoints, the variant-cache hit
// path, and the columnar fingerprint-filter scan the compiled probes
// ride on (the branch-free intersect loop in FactBase::ProbeBucket).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/eval/bottomup.h"
#include "src/eval/fact_base.h"
#include "src/eval/kernel.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

// Flips the process-wide compilation switch for one benchmark and
// restores the default afterwards, so binary-wide run order never
// changes what any other benchmark measures.
class ScopedCompileRules {
 public:
  explicit ScopedCompileRules(bool on) : prev_(RuleCompilationEnabled()) {
    SetRuleCompilationEnabled(on);
  }
  ~ScopedCompileRules() { SetRuleCompilationEnabled(prev_); }

 private:
  bool prev_;
};

void RunTcFixpoint(benchmark::State& state, bool compiled) {
  ScopedCompileRules guard(compiled);
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::TcProgram(n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  // One warm cache across iterations, like an engine across solves: the
  // steady state this measures is executor throughput, not lowering.
  KernelCache cache;
  options.kernel_cache = &cache;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}

void BM_KernelTc_Compiled(benchmark::State& state) {
  RunTcFixpoint(state, /*compiled=*/true);
}
BENCHMARK(BM_KernelTc_Compiled)->Range(16, 256);

void BM_KernelTc_Legacy(benchmark::State& state) {
  RunTcFixpoint(state, /*compiled=*/false);
}
BENCHMARK(BM_KernelTc_Legacy)->Range(16, 256);

void RunHopFixpoint(benchmark::State& state, bool compiled) {
  ScopedCompileRules guard(compiled);
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(
      store, "hop(X,Z) :- e(X,Y), e(Y,Z).\n" + bench::ChainFacts("e", n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  KernelCache cache;
  options.kernel_cache = &cache;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_KernelHop_Compiled(benchmark::State& state) {
  RunHopFixpoint(state, /*compiled=*/true);
}
BENCHMARK(BM_KernelHop_Compiled)->Arg(10000)->Arg(100000);

void BM_KernelHop_Legacy(benchmark::State& state) {
  RunHopFixpoint(state, /*compiled=*/false);
}
BENCHMARK(BM_KernelHop_Legacy)->Arg(10000)->Arg(100000);

// Variant-cache hit path: the per-round cost a compiled fixpoint pays to
// re-ask for an already-lowered (rule, delta position, order) variant.
void BM_KernelCacheHit(benchmark::State& state) {
  TermStore store;
  auto parsed = ParseProgram(store, "t(X,Z) :- t(X,Y), e(Y,Z).\ne(a,b).\n");
  const Rule& rule = parsed->rules[0];
  KernelCache cache;
  auto estimate = [](TermId) { return size_t{100}; };
  auto first = cache.Get(store, rule, estimate, 0);
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    auto program = cache.Get(store, rule, estimate, 0);
    benchmark::DoNotOptimize(program.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCacheHit);

// The two-key columnar probe: the best group gathers through the second
// column's flat fingerprint array (the branch-free 4-wide filter). Facts
// p(a_{i%64}, b_{i%8}, c_i): probing p(a3, b5, X) lands a ~n/64-row best
// group filtered against the ~n/8 second group's fingerprints.
void BM_ColumnScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  FactBase facts;
  for (int i = 0; i < n; ++i) {
    std::string atom = "p(a" + std::to_string(i % 64) + ",b" +
                       std::to_string(i % 8) + ",c" + std::to_string(i) +
                       ")";
    facts.Insert(store, *ParseTerm(store, atom));
  }
  TermId pattern = *ParseTerm(store, "p(a3,b5,X)");
  std::vector<TermId> scratch;
  for (auto _ : state) {
    auto candidates =
        facts.CandidatesBatch(store, pattern, &scratch, /*frozen=*/true);
    benchmark::DoNotOptimize(candidates.size());
  }
  state.SetItemsProcessed(state.iterations() * (n / 64));
}
BENCHMARK(BM_ColumnScan)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_kernel")
