// E4/E14 + DESIGN.md section 4.2 ablation: the two well-founded-model
// engines — the literal W_P operator of Definitions 3.3-3.5 versus the
// alternating fixpoint — on win/move chains (worst-case alternation
// depth), cycles (maximal undefinedness), and trees.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/eval/scheduler.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"
#include "src/wfs/wfs.h"

namespace hilog {
namespace {

GroundProgram MakeGround(TermStore& store, const std::string& text) {
  auto parsed = ParseProgram(store, text);
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  return ground;
}

void BM_WfsOperator_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::GroundWinChain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WfsResult r = ComputeWfsViaOperator(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfsOperator_Chain)->Range(8, 256);

void BM_WfsAlternating_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::GroundWinChain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfsAlternating_Chain)->Range(8, 4096);

void BM_WfsAlternating_Cycle(benchmark::State& state) {
  // A win/move cycle: every w atom is undefined — the all-undefined
  // stress case.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = "w(X) :- m(X,Y), ~w(Y).\n" + bench::CycleFacts("m", n);
  auto parsed = ParseProgram(store, text);
  // Ground via relevance (the program is strongly range restricted).
  GroundProgram ground;
  {
    auto envelope = LeastModelOfPositiveProjection(store, *parsed,
                                                   BottomUpOptions());
    benchmark::DoNotOptimize(envelope.facts.size());
  }
  RelevanceGroundingResult g =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(g.program);
    benchmark::DoNotOptimize(r.model.CountUndefined());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WfsAlternating_Cycle)->Range(8, 1024);

void BM_WfsOperator_Cycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = "w(X) :- m(X,Y), ~w(Y).\n" + bench::CycleFacts("m", n);
  auto parsed = ParseProgram(store, text);
  RelevanceGroundingResult g =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WfsResult r = ComputeWfsViaOperator(g.program);
    benchmark::DoNotOptimize(r.model.CountUndefined());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WfsOperator_Cycle)->Range(8, 256);

void BM_WfsScheduled_Chain(benchmark::State& state) {
  // The SCC scheduler on the same chain: every atom SCC is a trivial
  // singleton, settled by rule inspection — O(n) where the alternating
  // fixpoint pays O(n) rounds over n atoms.
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::GroundWinChain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WfsResult r = ComputeWfsScc(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfsScheduled_Chain)->Range(8, 4096);

void BM_WfsAlternating_MultiChains(benchmark::State& state) {
  // 8 independent chains of the given length, whole-program alternating
  // fixpoint: the round count tracks the longest chain, and every round
  // re-sweeps all chains — quadratic in the chain length.
  const int length = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::MultiWinChains(/*chains=*/8, length));
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * 8 * length);
}
BENCHMARK(BM_WfsAlternating_MultiChains)->Range(8, 512);

void BM_WfsScheduled_MultiChains(benchmark::State& state) {
  // Same program through the scheduler: each chain settles independently
  // and each atom exactly once — linear in the total program size.
  const int length = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::MultiWinChains(/*chains=*/8, length));
  for (auto _ : state) {
    WfsResult r = ComputeWfsScc(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * 8 * length);
}
BENCHMARK(BM_WfsScheduled_MultiChains)->Range(8, 512);

void BM_WfsComponentPipeline_MultiChains(benchmark::State& state) {
  // End-to-end component-at-a-time evaluation from the non-ground
  // program: condensation, restricted per-component grounding, and
  // per-SCC settling (a cold scheduler cache every iteration).
  const int chains = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::MultiWinChains(chains, 16));
  for (auto _ : state) {
    ComponentWfsResult r =
        SolveWfsByComponents(store, *parsed, BottomUpOptions());
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * chains * 16);
}
BENCHMARK(BM_WfsComponentPipeline_MultiChains)->Range(4, 64);

void BM_WfsComponentCacheReuse_MultiChains(benchmark::State& state) {
  // The service's steady state: every component is unchanged since the
  // last solve, so each iteration replays settled components from the
  // cache without grounding or fixpoints.
  const int chains = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::MultiWinChains(chains, 16));
  SchedulerCache cache;
  {
    ComponentWfsResult warm =
        SolveWfsByComponents(store, *parsed, BottomUpOptions(), &cache);
    benchmark::DoNotOptimize(warm.model.CountTrue());
  }
  for (auto _ : state) {
    ComponentWfsResult r =
        SolveWfsByComponents(store, *parsed, BottomUpOptions(), &cache);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * chains * 16);
}
BENCHMARK(BM_WfsComponentCacheReuse_MultiChains)->Range(4, 64);

void BM_WfsScheduled_Layered(benchmark::State& state) {
  // A deep stratified negation stack: one scheduler component per layer
  // predicate, no cyclic SCCs anywhere.
  const int layers = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed =
      ParseProgram(store, bench::LayeredNegationProgram(layers, /*width=*/8));
  for (auto _ : state) {
    ComponentWfsResult r =
        SolveWfsByComponents(store, *parsed, BottomUpOptions());
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * layers * 8);
}
BENCHMARK(BM_WfsScheduled_Layered)->Range(2, 32);

void BM_WfsParallel_WideLayered(benchmark::State& state) {
  // Wide waves: every layer of the stack is `width` independent
  // components deep-1 apart, so each wave fans `width` components across
  // the worker pool. Axis 0 is the width, axis 1 the eval-thread count
  // (1 = the sequential whole-wave batch).
  const int width = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TermStore store;
  auto parsed =
      ParseProgram(store, bench::LayeredNegationProgram(/*layers=*/4, width));
  BottomUpOptions options;
  options.eval_threads = static_cast<size_t>(threads);
  for (auto _ : state) {
    ComponentWfsResult r = SolveWfsByComponents(store, *parsed, options);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * 4 * width);
}
BENCHMARK(BM_WfsParallel_WideLayered)->ArgsProduct({{8, 32}, {1, 2, 4}});

void BM_WfsParallel_DeepLayered(benchmark::State& state) {
  // Deep waves: many narrow waves in sequence — the wave barrier's
  // worst case, where per-wave clone/merge overhead cannot amortize.
  const int layers = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TermStore store;
  auto parsed =
      ParseProgram(store, bench::LayeredNegationProgram(layers, /*width=*/4));
  BottomUpOptions options;
  options.eval_threads = static_cast<size_t>(threads);
  for (auto _ : state) {
    ComponentWfsResult r = SolveWfsByComponents(store, *parsed, options);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * layers * 4);
}
BENCHMARK(BM_WfsParallel_DeepLayered)->ArgsProduct({{16}, {1, 2, 4}});

void BM_WfsParallel_MultiChains(benchmark::State& state) {
  // Multi-chain scaling: one wave of `chains` heavyweight win/move
  // components, each with a full alternating-depth settle — the ideal
  // fan-out shape for the worker pool.
  const int chains = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  TermStore store;
  auto parsed = ParseProgram(store, bench::MultiWinChains(chains, /*length=*/32));
  BottomUpOptions options;
  options.eval_threads = static_cast<size_t>(threads);
  for (auto _ : state) {
    ComponentWfsResult r = SolveWfsByComponents(store, *parsed, options);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * chains * 32);
}
BENCHMARK(BM_WfsParallel_MultiChains)->ArgsProduct({{8, 32}, {1, 2, 4}});

void BM_GammaOperator(benchmark::State& state) {
  // One Gamma (GL-reduct least model) application: the inner loop of
  // both the alternating fixpoint and stable-model checking.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::GroundWinChain(n));
  PreparedGround prepared(ground);
  std::vector<char> empty(prepared.num_atoms(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prepared.GammaOperator(empty));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GammaOperator)->Range(64, 16384);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_wfs")
