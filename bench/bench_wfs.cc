// E4/E14 + DESIGN.md section 4.2 ablation: the two well-founded-model
// engines — the literal W_P operator of Definitions 3.3-3.5 versus the
// alternating fixpoint — on win/move chains (worst-case alternation
// depth), cycles (maximal undefinedness), and trees.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/ground/grounder.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"
#include "src/wfs/wfs.h"

namespace hilog {
namespace {

GroundProgram MakeGround(TermStore& store, const std::string& text) {
  auto parsed = ParseProgram(store, text);
  GroundProgram ground;
  ToGroundProgram(store, *parsed, &ground);
  return ground;
}

void BM_WfsOperator_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::GroundWinChain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WfsResult r = ComputeWfsViaOperator(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfsOperator_Chain)->Range(8, 256);

void BM_WfsAlternating_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram ground =
      MakeGround(store, bench::GroundWinChain(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(ground);
    benchmark::DoNotOptimize(r.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WfsAlternating_Chain)->Range(8, 4096);

void BM_WfsAlternating_Cycle(benchmark::State& state) {
  // A win/move cycle: every w atom is undefined — the all-undefined
  // stress case.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = "w(X) :- m(X,Y), ~w(Y).\n" + bench::CycleFacts("m", n);
  auto parsed = ParseProgram(store, text);
  // Ground via relevance (the program is strongly range restricted).
  GroundProgram ground;
  {
    auto envelope = LeastModelOfPositiveProjection(store, *parsed,
                                                   BottomUpOptions());
    benchmark::DoNotOptimize(envelope.facts.size());
  }
  RelevanceGroundingResult g =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WfsResult r = ComputeWfsAlternating(g.program);
    benchmark::DoNotOptimize(r.model.CountUndefined());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WfsAlternating_Cycle)->Range(8, 1024);

void BM_WfsOperator_Cycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = "w(X) :- m(X,Y), ~w(Y).\n" + bench::CycleFacts("m", n);
  auto parsed = ParseProgram(store, text);
  RelevanceGroundingResult g =
      GroundWithRelevance(store, *parsed, BottomUpOptions());
  for (auto _ : state) {
    WfsResult r = ComputeWfsViaOperator(g.program);
    benchmark::DoNotOptimize(r.model.CountUndefined());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WfsOperator_Cycle)->Range(8, 256);

void BM_GammaOperator(benchmark::State& state) {
  // One Gamma (GL-reduct least model) application: the inner loop of
  // both the alternating fixpoint and stable-model checking.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  GroundProgram ground = MakeGround(store, bench::GroundWinChain(n));
  PreparedGround prepared(ground);
  std::vector<char> empty(prepared.num_atoms(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prepared.GammaOperator(empty));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GammaOperator)->Range(64, 16384);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_wfs")
