// Tabled vs. plain SLD resolution: the classic wins of memoization —
// left recursion terminates, and exponentially many proofs collapse to
// one answer per fact. Plus table-count/answer-throughput series.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/eval/resolution.h"
#include "src/eval/tabled.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

// Chain of diamonds: 2^n proofs of r(n0, n_last).
std::string DiamondChain(int diamonds) {
  std::string text = "r(X,Y) :- e(X,Y). r(X,Y) :- e(X,Z), r(Z,Y).";
  for (int i = 0; i < diamonds; ++i) {
    std::string from = "n" + std::to_string(i);
    std::string to = "n" + std::to_string(i + 1);
    std::string u = "u" + std::to_string(i);
    std::string d = "d" + std::to_string(i);
    text += "e(" + from + "," + u + ").";
    text += "e(" + from + "," + d + ").";
    text += "e(" + u + "," + to + ").";
    text += "e(" + d + "," + to + ").";
  }
  return text;
}

void BM_SldOnDiamonds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, DiamondChain(n));
  TermId query =
      *ParseTerm(store, "r(n0,n" + std::to_string(n) + ")");
  ResolutionOptions options;
  options.max_solutions = 1u << 30;
  for (auto _ : state) {
    ResolutionResult r = SolveByResolution(store, *parsed, query, options);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetItemsProcessed(state.iterations() * (1ll << n));
}
BENCHMARK(BM_SldOnDiamonds)->DenseRange(4, 10, 2);

void BM_TabledOnDiamonds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, DiamondChain(n));
  TermId query =
      *ParseTerm(store, "r(n0,n" + std::to_string(n) + ")");
  for (auto _ : state) {
    TabledResult r = SolveTabled(store, *parsed, query, TabledOptions());
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetItemsProcessed(state.iterations() * (1ll << n));
}
BENCHMARK(BM_TabledOnDiamonds)->DenseRange(4, 12, 2);

void BM_TabledLeftRecursiveTc(benchmark::State& state) {
  // Left recursion: impossible for plain SLD, natural for tabling.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "t(X,Y) :- t(X,Z), e(Z,Y). t(X,Y) :- e(X,Y).\n" +
      bench::ChainFacts("e", n);
  auto parsed = ParseProgram(store, text);
  TermId query = *ParseTerm(store, "t(n0,Y)");
  for (auto _ : state) {
    TabledResult r = SolveTabled(store, *parsed, query, TabledOptions());
    benchmark::DoNotOptimize(r.answers.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TabledLeftRecursiveTc)->Range(8, 64);

void BM_TabledHiLogGame(benchmark::State& state) {
  // Tabled evaluation of the positive part of the HiLog game (the move
  // reachability sub-problem).
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "reach(M)(X,Y) :- game(M), M(X,Y).\n"
      "reach(M)(X,Y) :- game(M), M(X,Z), reach(M)(Z,Y).\n"
      "game(mv).\n" +
      bench::ChainFacts("mv", n);
  auto parsed = ParseProgram(store, text);
  TermId query = *ParseTerm(store, "reach(mv)(n0,Y)");
  for (auto _ : state) {
    TabledResult r = SolveTabled(store, *parsed, query, TabledOptions());
    benchmark::DoNotOptimize(r.answers.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TabledHiLogGame)->Range(8, 32);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_tabled")
