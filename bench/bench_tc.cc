// E1/E2: the paper's motivating generic programs — transitive closure
// tc(G) (Example 2.1) and maplist(F) (Example 2.2) — evaluated bottom-up,
// across graph/list sizes. Also compares the generic HiLog tc against a
// hand-specialized first-order tc (the cost of genericity).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/core/engine.h"
#include "src/eval/bottomup.h"
#include "src/lang/parser.h"

namespace hilog {
namespace {

void BM_GenericTc_Chain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::TcProgram(n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  // Quadratically many closure facts.
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_GenericTc_Chain)->Range(16, 256);

void BM_NormalTc_Chain(benchmark::State& state) {
  // The specialized first-order program a normal-logic user would write
  // for each relation (the paper: "one would have to write a separate tc
  // routine for each possible e").
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::NormalTcProgram(n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_NormalTc_Chain)->Range(16, 256);

void BM_GenericTc_TwoGraphs(benchmark::State& state) {
  // One rule set, two graphs: the generic program amortizes.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text =
      "tc(G)(X,Y) :- graph(G), G(X,Y).\n"
      "tc(G)(X,Y) :- graph(G), G(X,Z), tc(G)(Z,Y).\n"
      "graph(e1). graph(e2).\n" +
      bench::ChainFacts("e1", n) + bench::ChainFacts("e2", n);
  auto parsed = ParseProgram(store, text);
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1));
}
BENCHMARK(BM_GenericTc_TwoGraphs)->Range(16, 128);

void BM_Maplist(benchmark::State& state) {
  // maplist(succ) applied to a list of length n (Example 2.2), evaluated
  // query-directed (unconstrained bottom-up would enumerate all n^k
  // lists; magic sets restrict derivations to the queried list's
  // suffixes).
  const int n = static_cast<int>(state.range(0));
  std::string text =
      "maplist(F)([],[]).\n"
      "maplist(F)([X|R],[Y|Z]) :- F(X,Y), maplist(F)(R,Z).\n";
  for (int i = 0; i < n; ++i) {
    text += "succ(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
  }
  std::string list = "[]";
  for (int i = n - 1; i >= 0; --i) {
    list = "[" + std::to_string(i) + "|" + list + "]";
  }
  std::string query = "maplist(succ)(" + list + ", Out)";
  for (auto _ : state) {
    Engine engine;
    engine.Load(text);
    Engine::QueryAnswer answer = engine.Query(query);
    benchmark::DoNotOptimize(answer.answers.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Maplist)->Range(4, 64);

void BM_IndexedJoin_HopJoin(benchmark::State& state) {
  // Two-hop join over a large chain EDB. Without the argument index every
  // e(Y,Z) probe scans all n facts of the e bucket (quadratic in n); the
  // discrimination index resolves each probe to the single successor
  // edge, making the join linear — which is what lets this case run at
  // 10k-100k facts at all.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(
      store, "hop(X,Z) :- e(X,Y), e(Y,Z).\n" + bench::ChainFacts("e", n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexedJoin_HopJoin)->Arg(10000)->Arg(100000);

void BM_IndexedJoin_SelectiveGuard(benchmark::State& state) {
  // A selective guard joined against a large relation, written in the
  // worst textual order (big relation first): the join planner must move
  // the guard forward, and the index must answer the bound-argument
  // probes.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  std::string text = "out(X,Y) :- e(X,Y), sel(X).\nsel(n7).\nsel(n11).\n" +
                     bench::ChainFacts("e", n);
  auto parsed = ParseProgram(store, text);
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexedJoin_SelectiveGuard)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_tc")
