// Incremental maintenance vs full recompute (src/maint): each benchmark
// runs one delta cycle per iteration, with Arg(0) paying a cold
// load-and-solve of the whole program and Arg(1) maintaining a warm
// engine through Engine::ApplyDelta — the DRed pass re-solves only the
// components the delta reaches and replays the rest from the
// settled-component cache. The acceptance bar for this subsystem is
// SmallDelta: maintenance at least 5x faster than recompute against the
// 100k-fact base.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "src/core/engine.h"
#include "workloads.h"

namespace hilog {
namespace {

// `relations` chain relations of `edges` facts each, plus one projection
// rule per relation: 2*relations predicate components, so a delta into
// one relation dirties exactly two of them.
std::string ShardedBase(int relations, int edges) {
  std::string text;
  for (int r = 0; r < relations; ++r) {
    std::string e = "e" + std::to_string(r);
    text += "s" + std::to_string(r) + "(X) :- " + e + "(X,Y).\n";
    text += bench::ChainFacts(e, edges);
  }
  return text;
}

// One toggled fact: even iterations retract it, odd ones re-add it, so
// the maintained engine's program size stays constant across the run.
void RunDeltaCycles(benchmark::State& state, const std::string& base,
                    const std::string& add, const std::string& retract) {
  const bool maintain = state.range(0) == 1;
  Engine warm;
  if (maintain) {
    if (!warm.Load(base).empty()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(warm.SolveWellFounded().ok);
  }
  bool removed = false;
  size_t true_atoms = 0;
  for (auto _ : state) {
    const std::string& add_now = removed ? add : "";
    const std::string& retract_now = removed ? "" : retract;
    if (maintain) {
      if (!warm.ApplyDelta(add_now, retract_now, nullptr).empty()) {
        state.SkipWithError("delta failed");
        return;
      }
      true_atoms = warm.SolveWellFounded().model.TrueAtoms().size();
    } else {
      state.PauseTiming();
      // Compose the equivalent from-scratch source off the clock: the
      // recompute arm measures load + solve, not string editing.
      std::string text = base;
      size_t at = text.find(retract + "\n");
      if (!removed && at != std::string::npos) {
        text.erase(at, retract.size() + 1);
      }
      state.ResumeTiming();
      Engine cold;
      if (!cold.Load(text).empty()) {
        state.SkipWithError("load failed");
        return;
      }
      true_atoms = cold.SolveWellFounded().model.TrueAtoms().size();
    }
    benchmark::DoNotOptimize(true_atoms);
    removed = !removed;
  }
  state.SetItemsProcessed(state.iterations());
}

// Acceptance workload: a one-fact delta against a 100k-fact base split
// into 100 relations. Maintenance touches 2 of 200 components.
void BM_Incremental_SmallDelta(benchmark::State& state) {
  static const std::string* base = new std::string(ShardedBase(100, 1000));
  RunDeltaCycles(state, *base, "e0(n0,n1).", "e0(n0,n1).");
}
BENCHMARK(BM_Incremental_SmallDelta)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Retraction-heavy delta: a 100-fact batch leaves and re-enters one
// relation of a 20k-fact base each cycle — the EraseBatch + column
// invalidation path under load.
void BM_Incremental_RetractHeavy(benchmark::State& state) {
  static const std::string* base = new std::string(ShardedBase(20, 1000));
  static const std::string* batch = [] {
    std::string* text = new std::string();
    for (int i = 0; i < 100; ++i) {
      *text += "e7(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
               ").\n";
    }
    return text;
  }();
  const bool maintain = state.range(0) == 1;
  Engine warm;
  if (maintain) {
    if (!warm.Load(*base).empty()) {
      state.SkipWithError("load failed");
      return;
    }
    benchmark::DoNotOptimize(warm.SolveWellFounded().ok);
  }
  bool removed = false;
  for (auto _ : state) {
    if (maintain) {
      if (!warm.ApplyDelta(removed ? *batch : "", removed ? "" : *batch,
                           nullptr)
               .empty()) {
        state.SkipWithError("delta failed");
        return;
      }
      benchmark::DoNotOptimize(
          warm.SolveWellFounded().model.TrueAtoms().size());
    } else {
      Engine cold;
      if (!cold.Load(*base).empty()) {
        state.SkipWithError("load failed");
        return;
      }
      if (!removed) {
        if (!cold.Retract(*batch).empty()) {
          state.SkipWithError("retract failed");
          return;
        }
      }
      benchmark::DoNotOptimize(
          cold.SolveWellFounded().model.TrueAtoms().size());
    }
    removed = !removed;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Incremental_RetractHeavy)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Recursive maintenance: eight independent transitive closures; the
// delta toggles one edge of the first chain, so maintenance re-solves
// one reach component (plus its edge relation) and replays the other
// fourteen.
void BM_Incremental_ReachMaintain(benchmark::State& state) {
  static const std::string* base = [] {
    std::string* text = new std::string();
    for (int r = 0; r < 8; ++r) {
      std::string e = "e" + std::to_string(r);
      std::string reach = "reach" + std::to_string(r);
      *text += reach + "(X,Y) :- " + e + "(X,Y).\n";
      *text += reach + "(X,Z) :- " + reach + "(X,Y), " + e + "(Y,Z).\n";
      *text += bench::ChainFacts(e, 128);
    }
    return text;
  }();
  RunDeltaCycles(state, *base, "e0(n127,n128).", "e0(n127,n128).");
}
BENCHMARK(BM_Incremental_ReachMaintain)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_incremental")
