// Workload generators shared by the benchmark binaries. Each generator
// corresponds to a workload named in DESIGN.md's per-experiment index.
#ifndef HILOG_BENCH_WORKLOADS_H_
#define HILOG_BENCH_WORKLOADS_H_

#include <string>

namespace hilog::bench {

// A chain graph e(n0,n1), ..., e(n{k-1},n{k}).
inline std::string ChainFacts(const std::string& pred, int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += pred + "(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
            ").\n";
  }
  return text;
}

// A cycle graph.
inline std::string CycleFacts(const std::string& pred, int n) {
  std::string text = ChainFacts(pred, n - 1);
  text += pred + "(n" + std::to_string(n - 1) + ",n0).\n";
  return text;
}

// The ground win/move chain program of size n (Example 6.1 family): the
// classic WFS benchmark with alternating outcomes and maximal
// alternating-fixpoint depth.
inline std::string GroundWinChain(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    std::string x = std::to_string(i);
    std::string y = std::to_string(i + 1);
    text += "w(n" + x + ") :- m(n" + x + ",n" + y + "), ~w(n" + y + ").\n";
    text += "m(n" + x + ",n" + y + ").\n";
  }
  return text;
}

// The non-ground win/move program over an acyclic random-ish graph with
// out-degree ~2 (keeps the WFS total but with long settling chains).
inline std::string WinMoveProgram(int positions) {
  std::string text = "w(X) :- m(X,Y), ~w(Y).\n";
  for (int i = 0; i < positions; ++i) {
    text += "m(n" + std::to_string(i) + ",n" + std::to_string(i + 1) + ").\n";
    if (i + 2 <= positions) {
      text +=
          "m(n" + std::to_string(i) + ",n" + std::to_string(i + 2) + ").\n";
    }
  }
  return text;
}

// The parameterized HiLog game (Example 6.3) with `games` move relations
// of `positions` each.
inline std::string HiLogGameProgram(int games, int positions) {
  std::string text = "winning(M)(X) :- game(M), M(X,Y), ~winning(M)(Y).\n";
  for (int g = 0; g < games; ++g) {
    std::string mv = "mv" + std::to_string(g);
    text += "game(" + mv + ").\n";
    for (int i = 0; i < positions; ++i) {
      text += mv + "(n" + std::to_string(i) + ",n" + std::to_string(i + 1) +
              ").\n";
    }
  }
  return text;
}

// `chains` independent ground win/move chains of `length` positions
// each over disjoint predicate pairs (w0/m0, w1/m1, ...): the
// multi-component workload for the SCC evaluation scheduler. A
// whole-program alternating fixpoint re-sweeps every chain each round;
// component-at-a-time settling touches each chain once.
inline std::string MultiWinChains(int chains, int length) {
  std::string text;
  for (int c = 0; c < chains; ++c) {
    std::string w = "w" + std::to_string(c);
    std::string m = "m" + std::to_string(c);
    for (int i = 0; i < length; ++i) {
      std::string x = std::to_string(i);
      std::string y = std::to_string(i + 1);
      text += w + "(n" + x + ") :- " + m + "(n" + x + ",n" + y + "), ~" +
              w + "(n" + y + ").\n";
      text += m + "(n" + x + ",n" + y + ").\n";
    }
  }
  return text;
}

// A `layers`-deep stack of negation strata, `width` predicates wide:
// every layer-l predicate depends positively on its layer-(l-1)
// counterpart and negatively on a layer-(l-1) neighbour. Stratified, so
// the WFS is total; each layer is its own scheduler component.
inline std::string LayeredNegationProgram(int layers, int width) {
  std::string text;
  for (int w = 0; w < width; ++w) {
    text += "p0_" + std::to_string(w) + "(c).\n";
  }
  for (int l = 1; l < layers; ++l) {
    std::string lo = std::to_string(l - 1);
    std::string hi = std::to_string(l);
    for (int w = 0; w < width; ++w) {
      std::string self = std::to_string(w);
      std::string other = std::to_string((w + 1) % width);
      text += "p" + hi + "_" + self + "(X) :- p" + lo + "_" + self +
              "(X), ~p" + lo + "_" + other + "(X).\n";
    }
  }
  return text;
}

// Generic transitive closure over a chain of size n (Example 2.1),
// guarded so it is strongly range restricted.
inline std::string TcProgram(int n) {
  std::string text =
      "tc(G)(X,Y) :- graph(G), G(X,Y).\n"
      "tc(G)(X,Y) :- graph(G), G(X,Z), tc(G)(Z,Y).\n"
      "graph(e).\n";
  text += ChainFacts("e", n);
  return text;
}

// Normal (first-order) transitive closure for the universal-encoding
// comparison.
inline std::string NormalTcProgram(int n) {
  std::string text =
      "t(X,Y) :- e(X,Y).\n"
      "t(X,Y) :- e(X,Z), t(Z,Y).\n";
  text += ChainFacts("e", n);
  return text;
}

// Parts hierarchy: a `depth`-deep, `fanout`-wide tree of part kinds; each
// part has 2 copies of each child kind (counts stay small).
inline std::string PartsProgram(int depth, int fanout) {
  std::string text =
      "in(Mach,X,Y,null,N) :- assoc(Mach,Part), Part(X,Y,N).\n"
      "in(Mach,X,Y,Z,N) :- assoc(Mach,Part), Part(X,Z,P),\n"
      "                    contains(Mach,Z,Y,M), N = P * M.\n"
      "contains(Mach,X,Y,N) :- N = sum(P, in(Mach,X,Y,_,P)).\n"
      "assoc(m, parts).\n";
  // Part kinds laid out level by level; each level-d kind has `fanout`
  // children at level d+1 (shared across parents to bound the count).
  for (int d = 0; d < depth; ++d) {
    for (int f = 0; f < fanout; ++f) {
      text += "parts(k" + std::to_string(d) + ", k" + std::to_string(d + 1) +
              "x" + std::to_string(f) + ", 2).\n";
      text += "parts(k" + std::to_string(d + 1) + "x" + std::to_string(f) +
              ", k" + std::to_string(d + 1) + ", 1).\n";
    }
  }
  return text;
}

// A stratified three-layer normal program for analysis benches.
inline std::string LayeredProgram(int width) {
  std::string text;
  for (int i = 0; i < width; ++i) {
    std::string s = std::to_string(i);
    text += "base" + s + "(c" + s + ").\n";
    text += "mid" + s + "(X) :- base" + s + "(X), ~excl" + s + "(X).\n";
    text += "top" + s + "(X) :- mid" + s + "(X).\n";
  }
  return text;
}

// k independent negative two-loops: 2^k stable-model candidates, 2 real
// stable models per loop.
inline std::string LoopProgram(int loops) {
  std::string text;
  for (int i = 0; i < loops; ++i) {
    std::string a = "a" + std::to_string(i);
    std::string b = "b" + std::to_string(i);
    text += a + " :- ~" + b + ".\n" + b + " :- ~" + a + ".\n";
  }
  return text;
}

}  // namespace hilog::bench

#endif  // HILOG_BENCH_WORKLOADS_H_
