#!/usr/bin/env python3
"""Compare two hilog-bench-core-v1 JSON files and fail on regressions.

Usage:
    bench/compare.py BASELINE.json CURRENT.json [--threshold 0.25]
                     [--min-ns 500] [--update]

Exit status is non-zero iff any case present in both files regressed by
more than --threshold (fractional slowdown of real_time_ns). Cases whose
baseline and current times are both under --min-ns are skipped: at that
scale scheduler jitter dominates and a "regression" is noise. Cases that
exist in only one file are reported but never fail the comparison —
benches are added and retired by design.

With --update, the comparison is still printed, then CURRENT is copied
over BASELINE (picking up new benches and retiring removed ones) and the
exit status is 0 regardless of regressions — this is how the checked-in
baseline is regenerated after intentional performance changes.
"""

import argparse
import json
import shutil
import sys


def load_cases(path):
    """Return {"binary/case-name": real_time_ns} for a core-v1 file."""
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "hilog-bench-core-v1":
        raise SystemExit(f"{path}: unexpected schema {schema!r}")
    cases = {}
    for binary in doc.get("binaries", []):
        prefix = binary.get("binary", "?")
        for bench in binary.get("benchmarks", []):
            cases[f"{prefix}/{bench['name']}"] = float(bench["real_time_ns"])
    return cases


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional slowdown (default "
                             "0.25 = 25%%)")
    parser.add_argument("--min-ns", type=float, default=500.0,
                        help="skip cases where both sides run under this "
                             "many ns (jitter floor, default 500)")
    parser.add_argument("--update", action="store_true",
                        help="after printing the comparison, copy CURRENT "
                             "over BASELINE and exit 0 (regenerate the "
                             "checked-in baseline)")
    args = parser.parse_args()

    base = load_cases(args.baseline)
    cur = load_cases(args.current)

    regressions = []
    improvements = []
    for name in sorted(base.keys() & cur.keys()):
        b, c = base[name], cur[name]
        if b < args.min_ns and c < args.min_ns:
            continue
        delta = (c - b) / b if b > 0 else float("inf")
        if delta > args.threshold:
            regressions.append((name, b, c, delta))
        elif delta < -args.threshold:
            improvements.append((name, b, c, delta))

    for name in sorted(base.keys() - cur.keys()):
        print(f"note: {name} only in baseline (retired?)")
    for name in sorted(cur.keys() - base.keys()):
        print(f"note: {name} only in current run (new bench)")
    for name, b, c, delta in improvements:
        print(f"improved: {name}  {b:.0f}ns -> {c:.0f}ns  "
              f"({delta * 100:+.1f}%)")
    for name, b, c, delta in regressions:
        print(f"REGRESSION: {name}  {b:.0f}ns -> {c:.0f}ns  "
              f"({delta * 100:+.1f}% > {args.threshold * 100:.0f}%)")

    shared = len(base.keys() & cur.keys())
    new = len(cur.keys() - base.keys())
    print(f"compared {shared} cases ({new} new, informational): "
          f"{len(regressions)} regressions, "
          f"{len(improvements)} improvements")
    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated baseline: {args.baseline} <- {args.current}")
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
