// Ablation bench (DESIGN.md section 4.1): hash-consed term construction,
// equality, unification, and substitution micro-costs.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "src/lang/parser.h"
#include "src/term/unify.h"

namespace hilog {
namespace {

void BM_InternDeepTerm(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermStore store;
    TermId f = store.MakeSymbol("f");
    TermId t = store.MakeSymbol("c");
    for (int i = 0; i < depth; ++i) t = store.MakeApply(f, {t});
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_InternDeepTerm)->Range(8, 4096);

void BM_ReinternIsHit(benchmark::State& state) {
  // Re-interning an existing term must be a pure hash lookup.
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  TermId f = store.MakeSymbol("f");
  TermId c = store.MakeSymbol("c");
  TermId t = c;
  for (int i = 0; i < depth; ++i) t = store.MakeApply(f, {t});
  for (auto _ : state) {
    TermId again = c;
    for (int i = 0; i < depth; ++i) again = store.MakeApply(f, {again});
    benchmark::DoNotOptimize(again);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ReinternIsHit)->Range(8, 4096);

void BM_EqualityIsIdCompare(benchmark::State& state) {
  // Hash-consing makes equality O(1) regardless of term size.
  TermStore store;
  TermId f = store.MakeSymbol("f");
  TermId a = store.MakeSymbol("a");
  TermId t1 = a;
  for (int i = 0; i < 1000; ++i) t1 = store.MakeApply(f, {t1});
  TermId t2 = a;
  for (int i = 0; i < 1000; ++i) t2 = store.MakeApply(f, {t2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t1 == t2);
  }
}
BENCHMARK(BM_EqualityIsIdCompare);

void BM_UnifyWide(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TermStore store;
  TermId p = store.MakeSymbol("p");
  std::vector<TermId> vars;
  std::vector<TermId> consts;
  for (int i = 0; i < width; ++i) {
    vars.push_back(store.MakeVariable("X" + std::to_string(i)));
    consts.push_back(store.MakeSymbol("c" + std::to_string(i)));
  }
  TermId pattern = store.MakeApply(p, vars);
  TermId target = store.MakeApply(p, consts);
  for (auto _ : state) {
    auto mgu = Unify(store, pattern, target);
    benchmark::DoNotOptimize(mgu);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_UnifyWide)->Range(2, 256);

void BM_UnifyHiLogNames(benchmark::State& state) {
  // Unification through curried predicate-name positions.
  TermStore store;
  TermId pattern = *ParseTerm(store, "tc(tc(G))(X,Y)");
  TermId target = *ParseTerm(store, "tc(tc(e))(n1,n2)");
  for (auto _ : state) {
    auto mgu = Unify(store, pattern, target);
    benchmark::DoNotOptimize(mgu);
  }
}
BENCHMARK(BM_UnifyHiLogNames);

void BM_MatchAgainstFacts(benchmark::State& state) {
  const int facts = static_cast<int>(state.range(0));
  TermStore store;
  TermId m = store.MakeSymbol("m");
  std::vector<TermId> targets;
  for (int i = 0; i < facts; ++i) {
    targets.push_back(store.MakeApply(
        m, {store.MakeSymbol("n" + std::to_string(i)),
            store.MakeSymbol("n" + std::to_string(i + 1))}));
  }
  TermId pattern = *ParseTerm(store, "m(X,Y)");
  for (auto _ : state) {
    size_t hits = 0;
    for (TermId t : targets) {
      Substitution subst;
      hits += MatchInto(store, pattern, t, &subst);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * facts);
}
BENCHMARK(BM_MatchAgainstFacts)->Range(16, 4096);

void BM_SubstituteDeep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  TermId f = store.MakeSymbol("f");
  TermId x = store.MakeVariable("X");
  TermId t = x;
  for (int i = 0; i < depth; ++i) t = store.MakeApply(f, {t});
  Substitution subst;
  subst.Bind(x, store.MakeSymbol("a"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(subst.Apply(store, t));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_SubstituteDeep)->Range(8, 1024);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_term")
