// E3/E15: the universal-relation encoding — encode/decode throughput, and
// the evaluation cost of running a program natively versus through its
// `call`/u_i encoding (the encoding collapses all predicates into one
// relation, so name-based indexing degrades; Section 6's structural
// objection, measured).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/eval/bottomup.h"
#include "src/lang/parser.h"
#include "src/transform/universal.h"

namespace hilog {
namespace {

void BM_EncodeTerm(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  UniversalTransform universal(store);
  TermId f = store.MakeSymbol("f");
  TermId t = store.MakeSymbol("c");
  for (int i = 0; i < depth; ++i) t = store.MakeApply(f, {t});
  for (auto _ : state) {
    benchmark::DoNotOptimize(universal.EncodeTerm(t));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EncodeTerm)->Range(4, 1024);

void BM_DecodeTerm(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  TermStore store;
  UniversalTransform universal(store);
  TermId f = store.MakeSymbol("f");
  TermId t = store.MakeSymbol("c");
  for (int i = 0; i < depth; ++i) t = store.MakeApply(f, {t});
  TermId encoded = universal.EncodeTerm(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(universal.DecodeTerm(encoded));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_DecodeTerm)->Range(4, 1024);

void BM_NativeEvaluation(benchmark::State& state) {
  // Baseline: the first-order tc program evaluated natively.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::NormalTcProgram(n));
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r =
        LeastModelOfPositiveProjection(store, *parsed, options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_NativeEvaluation)->Range(16, 128);

void BM_UniversalEvaluation(benchmark::State& state) {
  // The same program through the call/u_i encoding: every atom has
  // predicate name `call`, so the fact store's name index stops
  // discriminating and joins scan the whole relation.
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::NormalTcProgram(n));
  UniversalTransform universal(store);
  Program encoded = universal.EncodeProgram(*parsed);
  BottomUpOptions options;
  options.max_facts = 10000000;
  for (auto _ : state) {
    BottomUpResult r = LeastModelOfPositiveProjection(store, encoded,
                                                      options);
    benchmark::DoNotOptimize(r.facts.size());
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_UniversalEvaluation)->Range(16, 128);

void BM_EncodeProgram(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto parsed = ParseProgram(store, bench::TcProgram(n));
  UniversalTransform universal(store);
  for (auto _ : state) {
    Program encoded = universal.EncodeProgram(*parsed);
    benchmark::DoNotOptimize(encoded.size());
  }
  state.SetItemsProcessed(state.iterations() * parsed->size());
}
BENCHMARK(BM_EncodeProgram)->Range(16, 1024);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_universal")
