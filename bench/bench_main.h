// Shared entry point for every bench_* binary: plain google-benchmark
// console output by default, plus `--json <file>` to emit the repo's
// common machine-readable schema (docs/observability.md, "Bench output"):
//
//   {"schema":"hilog-bench-v1","binary":"bench_wfs","benchmarks":[
//     {"name":"BM_X/8","iterations":N,"real_time_ns":R,"cpu_time_ns":C,
//      "counters":{"items_per_second":...}},...]}
//
// Times are per-iteration nanoseconds. bench/run_all.sh aggregates the
// per-binary files into BENCH_core.json so successive PRs can diff a
// stable perf baseline.
#ifndef HILOG_BENCH_BENCH_MAIN_H_
#define HILOG_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace hilog::bench {

class JsonReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonReporter(std::string binary) : binary_(std::move(binary)) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    char buf[160];
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      std::string entry = "{\"name\":\"" + Escaped(run.benchmark_name()) +
                          "\"";
      std::snprintf(buf, sizeof(buf),
                    ",\"iterations\":%lld,\"real_time_ns\":%.3f"
                    ",\"cpu_time_ns\":%.3f",
                    static_cast<long long>(run.iterations),
                    run.real_accumulated_time * 1e9 / iters,
                    run.cpu_accumulated_time * 1e9 / iters);
      entry += buf;
      entry += ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", first ? "" : ",",
                      Escaped(name).c_str(),
                      static_cast<double>(counter.value));
        entry += buf;
        first = false;
      }
      entry += "}}";
      entries_.push_back(std::move(entry));
    }
  }

  std::string ToJson() const {
    std::string out =
        "{\"schema\":\"hilog-bench-v1\",\"binary\":\"" + Escaped(binary_) +
        "\",\"benchmarks\":[";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += entries_[i];
    }
    out += "]}";
    return out;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string binary_;
  std::vector<std::string> entries_;
};

inline int BenchMain(int argc, char** argv, const char* binary_name) {
  std::string json_path;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int forwarded = static_cast<int>(args.size());
  benchmark::Initialize(&forwarded, args.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded, args.data())) {
    return 1;
  }
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonReporter reporter(binary_name);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    std::ofstream out(json_path);
    out << reporter.ToJson() << "\n";
    if (!out.good()) return 1;
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace hilog::bench

#define HILOG_BENCH_MAIN(binary)                          \
  int main(int argc, char** argv) {                       \
    return hilog::bench::BenchMain(argc, argv, binary);   \
  }

#endif  // HILOG_BENCH_BENCH_MAIN_H_
