// Service-layer benchmarks: query throughput through the thread-pool
// executor as worker count scales (the ROADMAP's "heavy query traffic"
// target — on a 4+-core machine BM_ServiceThroughput/4 should clear 3x
// the single-worker rate), and the cost of publishing a new snapshot
// (parse + WFS solve off to the side while readers keep the old epoch).

#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_main.h"

#include "workloads.h"
#include "src/obs/histogram.h"
#include "src/service/executor.h"
#include "src/service/snapshot.h"

namespace hilog {
namespace {

using service::ExecutorOptions;
using service::QueryExecutor;
using service::QueryRequest;
using service::QueryResponse;
using service::ServiceStatus;
using service::SnapshotStore;

constexpr int kChain = 128;
constexpr int kBatch = 64;

std::vector<std::string> ThroughputQueries() {
  // Queries spread over the tail half of the win/move chain: each one is
  // magic-directed to a suffix, so per-query work varies but stays small.
  std::vector<std::string> queries;
  queries.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    const int pos = kChain / 2 + (i * 7) % (kChain / 2 - 2);
    queries.push_back("w(n" + std::to_string(pos) + ")");
  }
  return queries;
}

// Arg = worker threads. One executor built outside the timed region (and
// warmed so every worker has materialized its session); each iteration
// submits a batch and waits for all answers.
void BM_ServiceThroughput(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto snapshots = std::make_shared<SnapshotStore>();
  std::string error = snapshots->Publish(bench::WinMoveProgram(kChain),
                                         /*append=*/false,
                                         /*solve_wfs=*/false);
  if (!error.empty()) {
    state.SkipWithError(error.c_str());
    return;
  }
  ExecutorOptions options;
  options.threads = threads;
  options.queue_capacity = kBatch * 2;
  QueryExecutor executor(snapshots, options);
  const std::vector<std::string> queries = ThroughputQueries();

  // Warm-up: force every worker session to materialize the snapshot.
  {
    std::vector<std::future<QueryResponse>> warm;
    for (size_t i = 0; i < threads * 4; ++i) {
      warm.push_back(executor.Submit({queries[i % queries.size()], 0, {}}));
    }
    for (auto& f : warm) f.get();
  }

  uint64_t answered = 0;
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(queries.size());
    for (const std::string& q : queries) {
      futures.push_back(executor.Submit({q, 0, {}}));
    }
    for (auto& f : futures) {
      QueryResponse response = f.get();
      if (response.status != ServiceStatus::kOk) {
        state.SkipWithError(response.error.c_str());
        return;
      }
      answered += response.answers.size();
    }
  }
  benchmark::DoNotOptimize(answered);
  state.SetItemsProcessed(state.iterations() * kBatch);
  executor.Shutdown();
}
// No ->UseRealTime(): the name suffix it adds would fall out of
// run_all.sh's baseline filter, and the JSON reporter records
// real_time_ns regardless (compare wall time across thread counts there).
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Arg = ground win-chain length. Publishing builds the next snapshot —
// parse plus a full WFS solve — while the previous epoch stays current
// for readers; this is the write-path cost LoadMore pays.
void BM_SnapshotSwap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string program = bench::GroundWinChain(n);
  SnapshotStore snapshots;
  for (auto _ : state) {
    std::string error =
        snapshots.Publish(program, /*append=*/false, /*solve_wfs=*/true);
    if (!error.empty()) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(snapshots.Current()->epoch());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SnapshotSwap)->Arg(16)->Arg(64)->Arg(256);

// Arg = values recorded per iteration. The recording hot path every
// service request pays 4x (latency, queue wait, eval, serialize): three
// relaxed atomic adds plus a bit scan. The LCG spreads values across
// buckets so the bench doesn't ping a single cache line's bucket.
void BM_HistogramRecord(benchmark::State& state) {
  const int per_iter = static_cast<int>(state.range(0));
  obs::Histogram histogram;
  uint64_t lcg = 0x243f6a8885a308d3ull;
  for (auto _ : state) {
    for (int i = 0; i < per_iter; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      histogram.Record(lcg >> 40);  // ~[0, 2^24): realistic ns latencies.
    }
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(state.iterations() * per_iter);
}
// ->Arg keeps the digit suffix run_all.sh's baseline filter requires.
BENCHMARK(BM_HistogramRecord)->Arg(64);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_service")
