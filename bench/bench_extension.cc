// E10/E12: preservation under extensions, measured — the cost of
// re-solving P cup Q as the disjoint extension Q grows, and the
// conservative-extension check itself. For range-restricted programs the
// base fragment's answers are unchanged (Theorem 5.3), so all added cost
// is attributable to Q.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "workloads.h"
#include "src/analysis/extension.h"
#include "src/ground/herbrand.h"
#include "src/lang/parser.h"
#include "src/wfs/alternating.h"

namespace hilog {
namespace {

void BM_UnionWfs_GrowingExtension(benchmark::State& state) {
  const int ext_rules = static_cast<int>(state.range(0));
  TermStore store;
  auto base = ParseProgram(store, bench::HiLogGameProgram(1, 6));
  DisjointExtensionSpec spec;
  spec.seed = 7;
  spec.num_symbols = 4;
  spec.num_facts = ext_rules;
  spec.num_rules = ext_rules;
  Program extension = GenerateDisjointGroundProgram(store, spec);
  Program both = UnionPrograms(*base, extension);
  Universe u = ProgramHiLogUniverse(store, both, UniverseBound{0, 100000});
  for (auto _ : state) {
    InstantiationResult inst =
        InstantiateOverUniverse(store, both, u.terms, 10000000);
    WfsResult wfs = ComputeWfsAlternating(inst.program);
    benchmark::DoNotOptimize(wfs.model.CountTrue());
  }
  state.SetItemsProcessed(state.iterations() * both.size());
}
BENCHMARK(BM_UnionWfs_GrowingExtension)->Range(2, 64);

void BM_ConservativeExtensionCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermStore store;
  auto base = ParseProgram(store, bench::HiLogGameProgram(1, n));
  DisjointExtensionSpec spec;
  spec.seed = 11;
  Program extension = GenerateDisjointGroundProgram(store, spec);
  Program both = UnionPrograms(*base, extension);

  Universe u = ProgramHiLogUniverse(store, both, UniverseBound{0, 100000});
  InstantiationResult small_inst =
      InstantiateOverUniverse(store, *base, u.terms, 10000000);
  Interpretation small = ComputeWfsAlternating(small_inst.program).model;
  InstantiationResult big_inst =
      InstantiateOverUniverse(store, both, u.terms, 10000000);
  Interpretation big = ComputeWfsAlternating(big_inst.program).model;

  Universe base_u =
      ProgramHiLogUniverse(store, *base, UniverseBound{0, 100000});
  InstantiationResult frag_inst =
      InstantiateOverUniverse(store, *base, base_u.terms, 10000000);
  AtomTable fragment;
  frag_inst.program.CollectAtoms(&fragment);

  for (auto _ : state) {
    TermId witness = kNoTerm;
    benchmark::DoNotOptimize(ConservativelyExtendsOnFragment(
        big, small, fragment.atoms(), &witness));
  }
  state.SetItemsProcessed(state.iterations() * fragment.size());
}
BENCHMARK(BM_ConservativeExtensionCheck)->Range(4, 64);

void BM_DisjointGeneration(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  TermStore store;
  DisjointExtensionSpec spec;
  spec.num_facts = rules;
  spec.num_rules = rules;
  for (auto _ : state) {
    spec.seed++;
    Program p = GenerateDisjointGroundProgram(store, spec);
    benchmark::DoNotOptimize(p.size());
  }
  state.SetItemsProcessed(state.iterations() * rules * 2);
}
BENCHMARK(BM_DisjointGeneration)->Range(4, 256);

}  // namespace
}  // namespace hilog

HILOG_BENCH_MAIN("bench_extension")
